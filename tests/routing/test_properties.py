"""Property-based tests on protocol data structures (hypothesis)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.routing.dsr import RouteCache
from repro.routing.neighbors import NeighborTable

node_ids = st.integers(min_value=0, max_value=30)
paths = st.lists(node_ids, min_size=2, max_size=8, unique=True)


class TestRouteCacheProperties:
    @given(st.lists(paths, max_size=20))
    def test_get_returns_valid_prefix(self, stored):
        """Any returned path starts at the owner, ends at the query
        destination, and contains no repeated nodes."""
        c = RouteCache()
        for p in stored:
            c.add([0] + [x + 1 for x in p], now=0.0)  # owner always 0
        for dst in range(1, 32):
            got = c.get(dst, now=1.0)
            if got is not None:
                assert got[0] == 0
                assert got[-1] == dst
                assert len(set(got)) == len(got)

    @given(st.lists(paths, max_size=20), node_ids, node_ids)
    def test_remove_link_removes_every_occurrence(self, stored, a, b):
        c = RouteCache()
        for p in stored:
            c.add(p, now=0.0)
        c.remove_link(a, b)
        for path, _exp in c._paths:
            for u, v in zip(path, path[1:]):
                assert {u, v} != {a, b}

    @given(st.lists(paths, max_size=30))
    def test_capacity_never_exceeded(self, stored):
        c = RouteCache(capacity=8)
        for p in stored:
            c.add(p, now=0.0)
        assert len(c) <= 8

    @given(paths)
    def test_shortest_prefix_wins(self, p):
        """A directly stored shorter path beats a longer one's prefix."""
        c = RouteCache()
        long_path = tuple(p)
        c.add(long_path, now=0.0)
        dst = long_path[-1]
        direct = (long_path[0], dst)
        if len(long_path) > 2 and dst != long_path[0]:
            c.add(direct, now=0.0)
            assert c.get(dst, now=1.0) == direct


class TestNeighborTableProperties:
    @given(
        st.lists(
            st.tuples(node_ids, st.floats(min_value=0.0, max_value=100.0)),
            max_size=40,
        )
    )
    def test_alive_iff_heard_within_hold(self, events):
        t = NeighborTable(hold_time=10.0)
        last = {}
        for addr, when in sorted(events, key=lambda e: e[1]):
            t.heard(addr, when, bidirectional=True)
            last[addr] = when
        now = 100.0
        alive = set(t.neighbors(now))
        for addr, when in last.items():
            assert (addr in alive) == (now - when <= 10.0)

    @given(st.lists(node_ids, max_size=30))
    def test_purge_removes_exactly_expired(self, addrs):
        t = NeighborTable(hold_time=5.0)
        for i, a in enumerate(addrs):
            t.heard(a, now=float(i % 3), bidirectional=True)
        lost = t.purge(now=6.5, on_lost=None)
        # Entries heard at t in {0, 1} expired (6.5 - t > 5); t=2 survives.
        for a in lost:
            assert t.get(a, 6.5) is None

    def test_bad_hold_time(self):
        with pytest.raises(ValueError):
            NeighborTable(hold_time=0.0)


class TestDsdvSequenceProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=40),   # advertised seq
                st.integers(min_value=1, max_value=10),   # advertised metric
                st.integers(min_value=1, max_value=5),    # prev hop
            ),
            max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_installed_seq_never_decreases(self, adverts):
        """Whatever update order arrives, the stored sequence number for
        a destination is monotone non-decreasing (loop-freedom core)."""
        from repro.routing.dsdv import Dsdv, _Advert
        from tests.routing.conftest import make_static_network

        sim, net = make_static_network(
            [(0, 0), (150, 0)],
            lambda s, n, m, r: Dsdv(s, n, m, r),
            mac="ideal",
        )
        agent = net.nodes[0].routing
        seq_seen = 0
        for seq, metric, prev in adverts:
            pkt = agent.make_control(_Advert([(9, float(metric), seq)]), 20)
            agent.on_control(pkt, prev_hop=prev, rx_power=1.0)
            if 9 in agent.table:
                assert agent.table[9].seq >= seq_seen
                seq_seen = agent.table[9].seq


class TestAodvRouteProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=30),  # dst_seq
                st.integers(min_value=1, max_value=8),   # hops
                st.integers(min_value=1, max_value=5),   # next hop
            ),
            max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_update_rule_montone(self, updates):
        """RFC 6.2: (seq, -hops) of the installed route never regresses."""
        from repro.routing.aodv import Aodv
        from tests.routing.conftest import make_static_network

        sim, net = make_static_network(
            [(0, 0), (150, 0)],
            lambda s, n, m, r: Aodv(s, n, m, r),
            mac="ideal",
        )
        agent = net.nodes[0].routing
        best = None
        for seq, hops, nh in updates:
            agent._update_route(9, nh, hops, seq, True, 10.0)
            r = agent.table[9]
            key = (r.dst_seq, -r.hops)
            if best is not None:
                assert key >= best
            best = key
