"""Cross-validate graph computations against networkx.

The oracle's lexicographic Dijkstra and OLSR's BFS routing are both
hand-rolled for speed; networkx provides an independent reference
implementation to check them against on random geometric graphs.
"""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.routing.oracle import shortest_hop_path


def build_graph(positions, radio_range):
    g = nx.Graph()
    g.add_nodes_from(range(len(positions)))
    for i in range(len(positions)):
        for j in range(i + 1, len(positions)):
            if np.hypot(*(positions[i] - positions[j])) <= radio_range:
                g.add_edge(i, j)
    return g


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 5000),
    n=st.integers(2, 30),
    radio_range=st.floats(min_value=100.0, max_value=500.0),
)
def test_oracle_hop_count_matches_networkx(seed, n, radio_range):
    rng = np.random.default_rng(seed)
    positions = rng.uniform(0.0, 1000.0, size=(n, 2))
    g = build_graph(positions, radio_range)
    src, dst = 0, n - 1
    ours = shortest_hop_path(positions, src, dst, radio_range)
    try:
        ref_len = nx.shortest_path_length(g, src, dst)
    except nx.NetworkXNoPath:
        assert ours is None
        return
    assert ours is not None
    assert len(ours) - 1 == ref_len
    # And the returned path must be valid in the graph.
    for a, b in zip(ours, ours[1:]):
        assert g.has_edge(a, b)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2000), n=st.integers(3, 20))
def test_olsr_route_distances_match_networkx(seed, n):
    """Feed OLSR a synthetic converged topology; its BFS distances must
    equal networkx's shortest paths on the same graph."""
    from repro.routing.olsr import Olsr
    from tests.routing.conftest import make_static_network

    rng = np.random.default_rng(seed)
    # Random connected-ish unit-disk graph as ground truth.
    positions = rng.uniform(0.0, 800.0, size=(n, 2))
    g = build_graph(positions, 300.0)

    sim, net = make_static_network(
        [(0, 0), (150, 0)], lambda s, nid, m, r: Olsr(s, nid, m, r), mac="ideal"
    )
    agent = net.nodes[0].routing  # addr 0

    # Inject neighbor + topology state directly (synthetic convergence).
    now = sim.now
    for nbr in g.neighbors(0):
        e = agent.neighbors.heard(int(nbr), now, bidirectional=True)
        e.meta["twohop"] = {int(x) for x in g.neighbors(nbr) if x != 0}
    for u in g.nodes:
        if u == 0:
            continue
        sels = {int(x) for x in g.neighbors(u)}
        agent.topology[int(u)] = (1, sels, now + 100.0)
    agent._dirty = True

    lengths = nx.single_source_shortest_path_length(g, 0)
    for dst in g.nodes:
        if dst == 0:
            continue
        ours = agent.route_distance(int(dst))
        ref = lengths.get(dst)
        if ref is None:
            assert ours is None
        else:
            assert ours == ref, f"dst={dst}: ours={ours} ref={ref}"
