"""AODV: discovery, reply-from-cache, error propagation, expanding ring."""

import pytest

from repro.routing.aodv import (
    RREQ_RETRIES,
    TTL_START,
    Aodv,
    Rerr,
    Rrep,
    Rreq,
)
from tests.routing.conftest import collect_deliveries, make_static_network

CHAIN4 = [(0, 0), (200, 0), (400, 0), (600, 0)]
CHAIN5 = CHAIN4 + [(800, 0)]


def aodv_factory(sim, node_id, mac, rng, **kwargs):
    return Aodv(sim, node_id, mac, rng, **kwargs)


def make_net(positions, mac="dcf", seed=1, **kwargs):
    return make_static_network(
        positions,
        lambda s, n, m, r: aodv_factory(s, n, m, r, **kwargs),
        mac=mac,
        seed=seed,
    )


class TestDiscovery:
    def test_one_hop_delivery(self):
        sim, net = make_net([(0, 0), (150, 0)])
        log = collect_deliveries(net)
        net.nodes[0].send(1, 64)
        sim.run(until=5.0)
        assert [(nid, p.src) for nid, p, _ in log] == [(1, 0)]

    def test_multi_hop_delivery(self):
        sim, net = make_net(CHAIN5)
        log = collect_deliveries(net)
        net.nodes[0].send(4, 64)
        sim.run(until=10.0)
        assert [(nid, p.src) for nid, p, _ in log] == [(4, 0)]
        # Data followed the chain: hops == 3 intermediate forwards.
        assert log[0][1].hops == 3

    def test_reverse_and_forward_routes_installed(self):
        sim, net = make_net(CHAIN4)
        collect_deliveries(net)
        net.nodes[0].send(3, 64)
        sim.run(until=10.0)
        src_route = net.nodes[0].routing.table[3]
        assert src_route.next_hop == 1 and src_route.hops == 3
        dst_route = net.nodes[3].routing.table[0]
        assert dst_route.next_hop == 2

    def test_second_packet_uses_cached_route_no_new_rreq(self):
        sim, net = make_net(CHAIN4)
        collect_deliveries(net)
        net.nodes[0].send(3, 64)
        sim.run(until=5.0)
        before = net.nodes[0].routing.stats.discoveries
        net.nodes[0].send(3, 64)
        sim.run(until=8.0)
        assert net.nodes[0].routing.stats.discoveries == before

    def test_partitioned_destination_gives_up(self):
        sim, net = make_net([(0, 0), (150, 0), (2000, 0)])
        log = collect_deliveries(net)
        net.nodes[0].send(2, 64)
        sim.run(until=60.0)
        assert log == []
        r = net.nodes[0].routing
        assert r.stats.drops_buffer == 1
        assert r.stats.discoveries == 1  # retries are within one discovery
        assert 2 not in r._pending

    def test_buffered_packets_flushed_on_route(self):
        sim, net = make_net(CHAIN4)
        log = collect_deliveries(net)
        for _ in range(5):
            net.nodes[0].send(3, 64)
        sim.run(until=10.0)
        assert len(log) == 5

    def test_bidirectional_flows(self):
        sim, net = make_net(CHAIN4)
        log = collect_deliveries(net)
        net.nodes[0].send(3, 64)
        net.nodes[3].send(0, 64)
        sim.run(until=10.0)
        assert sorted(nid for nid, _, _ in log) == [0, 3]


class TestIntermediateReply:
    def test_reply_from_cache(self):
        sim, net = make_net(CHAIN4)
        collect_deliveries(net)
        # Prime node 1 with a route to 3 via a full discovery 0->3.
        net.nodes[0].send(3, 64)
        sim.run(until=5.0)
        # Now 0 re-discovers after its route expires -> but node 1 can
        # answer directly. Simulate by clearing only node 0's table.
        net.nodes[0].routing.table.clear()
        rreqs_at_3_before = sum(
            1
            for _ in ()
        )
        net.nodes[0].send(3, 64)
        sim.run(until=10.0)
        # Either destination or intermediate answered; route restored.
        assert net.nodes[0].routing.table[3].next_hop == 1


class TestSequenceRules:
    def make_agent(self):
        sim, net = make_net([(0, 0), (150, 0)])
        return sim, net.nodes[0].routing

    def test_higher_seq_replaces(self):
        sim, agent = self.make_agent()
        agent._update_route(9, 1, 4, 10, True, 10.0)
        agent._update_route(9, 2, 6, 12, True, 10.0)
        assert agent.table[9].next_hop == 2

    def test_equal_seq_fewer_hops_replaces(self):
        sim, agent = self.make_agent()
        agent._update_route(9, 1, 4, 10, True, 10.0)
        agent._update_route(9, 2, 2, 10, True, 10.0)
        assert agent.table[9].next_hop == 2

    def test_equal_seq_more_hops_ignored(self):
        sim, agent = self.make_agent()
        agent._update_route(9, 1, 2, 10, True, 10.0)
        agent._update_route(9, 2, 5, 10, True, 10.0)
        assert agent.table[9].next_hop == 1

    def test_lower_seq_ignored(self):
        sim, agent = self.make_agent()
        agent._update_route(9, 1, 2, 10, True, 10.0)
        agent._update_route(9, 2, 1, 8, True, 10.0)
        assert agent.table[9].next_hop == 1


class TestLinkFailure:
    def test_rerr_invalidates_downstream(self):
        sim, net = make_net(CHAIN4)
        collect_deliveries(net)
        net.nodes[0].send(3, 64)
        sim.run(until=5.0)
        # Break 2->3 from node 2's perspective.
        agent2 = net.nodes[2].routing
        agent2.link_failed(None, next_hop=3)
        sim.run(until=6.0)
        # Node 1 heard the RERR (it is a precursor) and invalidated.
        r1 = net.nodes[1].routing.table.get(3)
        assert r1 is not None and not r1.valid
        # And propagated so the source knows too.
        r0 = net.nodes[0].routing.table.get(3)
        assert r0 is not None and not r0.valid

    def test_source_rediscovers_after_failure(self):
        sim, net = make_net(CHAIN4, seed=7)
        log = collect_deliveries(net)
        net.nodes[0].send(3, 64)
        sim.run(until=5.0)
        disc_before = net.nodes[0].routing.stats.discoveries
        # Invalidate everywhere, then send again: must re-discover.
        for node in net.nodes:
            for r in node.routing.table.values():
                r.valid = False
        net.nodes[0].send(3, 64)
        sim.run(until=15.0)
        assert net.nodes[0].routing.stats.discoveries == disc_before + 1
        assert len(log) == 2


class TestExpandingRing:
    def test_initial_ttl_is_ttl_start(self):
        sim, net = make_net([(0, 0), (2000, 0)])
        net.nodes[0].send(1, 64)
        sim.run(until=0.5)
        assert net.nodes[0].routing._pending[1].ttl == TTL_START

    def test_ttl_escalates_to_net_diameter(self):
        sim, net = make_net([(0, 0), (2000, 0)])
        net.nodes[0].send(1, 64)
        sim.run(until=20.0)
        # After all retries the pending entry is gone; during retries the
        # ttl reached NET_DIAMETER. Validate via discovery give-up.
        assert 1 not in net.nodes[0].routing._pending

    def test_rreq_dedup(self):
        sim, net = make_net([(0, 0), (100, 0), (150, 0)])
        collect_deliveries(net)
        net.nodes[0].send(2, 64)
        sim.run(until=5.0)
        # Node 1 saw the RREQ from 0 and possibly 2's rebroadcast; it
        # must have forwarded at most once.
        assert net.nodes[1].routing.stats.control_packets <= 2


class TestHelloMode:
    def test_hello_neighbor_loss_detected(self):
        sim, net = make_net([(0, 0), (150, 0)], mac="ideal", hello_interval=1.0)
        sim.run(until=3.0)
        agent = net.nodes[0].routing
        assert agent._neighbors.is_neighbor(1, sim.now)

    def test_hello_routes_installed(self):
        sim, net = make_net([(0, 0), (150, 0)], mac="ideal", hello_interval=1.0)
        sim.run(until=3.0)
        r = net.nodes[0].routing.table.get(1)
        assert r is not None and r.hops == 1
