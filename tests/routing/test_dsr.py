"""DSR: cache semantics, discovery, source routing, errors, salvage."""

import pytest

from repro.routing.dsr import Dsr, RouteCache
from tests.routing.conftest import collect_deliveries, make_static_network

CHAIN4 = [(0, 0), (200, 0), (400, 0), (600, 0)]


def make_net(positions, seed=1, mac="dcf", **kwargs):
    return make_static_network(
        positions,
        lambda s, n, m, r: Dsr(s, n, m, r, **kwargs),
        mac=mac,
        mac_kwargs={"promiscuous": True},
        seed=seed,
    )


class TestRouteCache:
    def test_add_and_get(self):
        c = RouteCache()
        c.add((0, 1, 2, 3), now=0.0)
        assert c.get(3, 1.0) == (0, 1, 2, 3)

    def test_prefix_paths_available(self):
        c = RouteCache()
        c.add((0, 1, 2, 3), now=0.0)
        assert c.get(1, 1.0) == (0, 1)
        assert c.get(2, 1.0) == (0, 1, 2)

    def test_shortest_path_preferred(self):
        c = RouteCache()
        c.add((0, 1, 2, 9), now=0.0)
        c.add((0, 5, 9), now=0.0)
        assert c.get(9, 1.0) == (0, 5, 9)

    def test_expiry(self):
        c = RouteCache(lifetime=10.0)
        c.add((0, 1), now=0.0)
        assert c.get(1, 5.0) == (0, 1)
        assert c.get(1, 11.0) is None

    def test_remove_link_truncates(self):
        c = RouteCache()
        c.add((0, 1, 2, 3), now=0.0)
        c.remove_link(1, 2)
        assert c.get(3, 1.0) is None
        assert c.get(1, 1.0) == (0, 1)  # prefix before the break survives

    def test_remove_link_reverse_direction(self):
        c = RouteCache()
        c.add((0, 1, 2), now=0.0)
        c.remove_link(2, 1)
        assert c.get(2, 1.0) is None

    def test_loop_paths_rejected(self):
        c = RouteCache()
        c.add((0, 1, 0), now=0.0)
        assert len(c) == 0

    def test_capacity_bounded(self):
        c = RouteCache(capacity=4)
        for i in range(10):
            c.add((0, 100 + i), now=0.0)
        assert len(c) == 4

    def test_purge_expired(self):
        c = RouteCache(lifetime=1.0)
        c.add((0, 1), now=0.0)
        c.add((0, 2), now=5.0)
        c.purge_expired(3.0)
        assert len(c) == 1


class TestDiscoveryAndDelivery:
    def test_one_hop(self):
        sim, net = make_net([(0, 0), (150, 0)])
        log = collect_deliveries(net)
        net.nodes[0].send(1, 64)
        sim.run(until=5.0)
        assert [(nid, p.src) for nid, p, _ in log] == [(1, 0)]

    def test_multi_hop_source_route(self):
        sim, net = make_net(CHAIN4)
        log = collect_deliveries(net)
        net.nodes[0].send(3, 64)
        sim.run(until=10.0)
        assert len(log) == 1
        pkt = log[0][1]
        assert pkt.route == [0, 1, 2, 3]

    def test_source_route_header_grows_packet(self):
        sim, net = make_net(CHAIN4)
        log = collect_deliveries(net)
        net.nodes[0].send(3, 64)
        sim.run(until=10.0)
        pkt = log[0][1]
        assert pkt.size == 64 + 4 * 4

    def test_cached_route_skips_discovery(self):
        sim, net = make_net(CHAIN4)
        collect_deliveries(net)
        net.nodes[0].send(3, 64)
        sim.run(until=5.0)
        d = net.nodes[0].routing.stats.discoveries
        net.nodes[0].send(3, 64)
        sim.run(until=10.0)
        assert net.nodes[0].routing.stats.discoveries == d

    def test_forwarders_learn_routes(self):
        sim, net = make_net(CHAIN4)
        collect_deliveries(net)
        net.nodes[0].send(3, 64)
        sim.run(until=5.0)
        # Node 1 forwarded 0->3 data; it must now know 3 and 0.
        c = net.nodes[1].routing.cache
        assert c.get(3, sim.now) is not None
        assert c.get(0, sim.now) is not None

    def test_reply_from_cache(self):
        sim, net = make_net(CHAIN4)
        collect_deliveries(net)
        net.nodes[0].send(3, 64)
        sim.run(until=5.0)
        # Fresh source 1 asks for 3; neighbor caches can answer without
        # the RREQ reaching node 3... count 3's control activity.
        before = net.nodes[3].routing.stats.control_packets
        net.nodes[1].send(3, 64)
        sim.run(until=10.0)
        # Node 1 itself has a cached route (it forwarded) -> no discovery.
        assert net.nodes[1].routing.stats.discoveries == 0

    def test_no_reply_from_cache_when_disabled(self):
        sim, net = make_net(CHAIN4, reply_from_cache=False)
        log = collect_deliveries(net)
        net.nodes[0].send(3, 64)
        sim.run(until=10.0)
        assert len(log) == 1  # discovery still reaches the target

    def test_partition_gives_up(self):
        sim, net = make_net([(0, 0), (2000, 0)])
        log = collect_deliveries(net)
        net.nodes[0].send(1, 64)
        sim.run(until=30.0)
        assert log == []
        assert net.nodes[0].routing.stats.drops_buffer == 1

    def test_no_periodic_overhead(self):
        sim, net = make_net(CHAIN4)
        sim.run(until=50.0)  # no traffic at all
        assert all(n.routing.stats.control_packets == 0 for n in net.nodes)


class TestErrorsAndSalvage:
    def test_rerr_removes_link_at_receiver(self):
        from repro.routing.dsr import DsrRerr

        sim, net = make_net(CHAIN4)
        agent0 = net.nodes[0].routing
        agent0.cache.add((0, 1, 2, 3), now=0.0)
        rerr = agent0.make_control(DsrRerr(2, 3, 0), 16, dst=0)
        agent0._on_rerr(rerr, rerr.payload)
        assert agent0.cache.get(3, sim.now) is None
        assert agent0.cache.get(2, sim.now) == (0, 1, 2)

    def test_rerr_relayed_toward_source(self):
        from repro.routing.dsr import DsrRerr

        sim, net = make_net(CHAIN4)
        agent1 = net.nodes[1].routing
        agent1.cache.add((1, 2, 3), now=0.0)
        # RERR in transit 2 -> 1 -> 0: node 1 must strip the link and relay.
        rerr = agent1.make_control(DsrRerr(2, 3, 0), 16, dst=0)
        rerr.route = [2, 1, 0]
        before = agent1.stats.control_packets
        agent1._on_rerr(rerr, rerr.payload)
        assert agent1.cache.get(3, sim.now) is None
        assert agent1.stats.control_packets == before + 1

    def test_salvage_uses_alternate_route(self):
        sim, net = make_net(CHAIN4)
        agent1 = net.nodes[1].routing
        # Give node 1 an alternate (fake) route to 3 via 2.
        agent1.cache.add((1, 2, 3), now=0.0)
        pkt = net.nodes[0].send(3, 64)  # goes through discovery
        sim.run(until=5.0)
        # Simulate failure of a fresh packet at node 1 toward 9 (unknown).
        p2 = net.nodes[0].send(3, 64)
        sim.run(until=6.0)
        p2.route = [0, 1, 9]  # pretend next hop was 9
        before = agent1.salvages
        agent1.link_failed(p2, next_hop=9)
        assert agent1.salvages == before + 1

    def test_salvage_limit(self):
        sim, net = make_net(CHAIN4)
        agent1 = net.nodes[1].routing
        agent1.cache.add((1, 2, 3), now=0.0)
        pkt = net.nodes[0].send(3, 64)
        sim.run(until=5.0)
        pkt2 = net.nodes[0].send(3, 64)
        sim.run(until=6.0)
        pkt2.route = [0, 1, 9]
        pkt2.salvage = 2  # already salvaged twice elsewhere
        before = agent1.stats.drops_no_route
        agent1.link_failed(pkt2, next_hop=9)
        assert agent1.stats.drops_no_route == before + 1


class TestSnooping:
    def test_overhearing_caches_routes(self):
        # Node 9 sits near the 0-1 link and should overhear data.
        sim, net = make_net(CHAIN4 + [(100, 100)])
        collect_deliveries(net)
        net.nodes[0].send(3, 64)
        sim.run(until=10.0)
        # The bystander is NOT on the route, so it learns nothing
        # (snoop requires self in route) — but route carriers do.
        assert net.nodes[2].routing.cache.get(0, sim.now) is not None
