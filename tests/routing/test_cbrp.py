"""CBRP: cluster formation, pruned discovery, shortening, local repair."""

import pytest

from repro.routing.cbrp import (
    HEAD,
    MEMBER,
    UNDECIDED,
    Cbrp,
    CbrpHello,
    CbrpRerr,
)
from tests.routing.conftest import collect_deliveries, make_static_network

CHAIN4 = [(0, 0), (200, 0), (400, 0), (600, 0)]
CLIQUE3 = [(0, 0), (100, 0), (0, 100)]


def make_net(positions, seed=1, mac="dcf", **kwargs):
    return make_static_network(
        positions,
        lambda s, n, m, r: Cbrp(s, n, m, r, **kwargs),
        mac=mac,
        seed=seed,
    )


class TestClusterFormation:
    def test_lowest_id_becomes_head_in_clique(self):
        sim, net = make_net(CLIQUE3)
        sim.run(until=20.0)
        roles = [n.routing.role for n in net.nodes]
        assert roles[0] == HEAD
        assert roles[1] == MEMBER and roles[2] == MEMBER

    def test_members_affiliate_with_head(self):
        sim, net = make_net(CLIQUE3)
        sim.run(until=20.0)
        assert net.nodes[1].routing.my_head() == 0
        assert net.nodes[2].routing.my_head() == 0

    def test_chain_forms_multiple_clusters(self):
        sim, net = make_net(CHAIN4)
        sim.run(until=30.0)
        heads = {n.node_id for n in net.nodes if n.routing.role == HEAD}
        assert heads  # at least one cluster
        # Every non-head node hears some head.
        for n in net.nodes:
            if n.routing.role != HEAD:
                assert n.routing.my_head() != -1

    def test_isolated_node_becomes_head(self):
        sim, net = make_net([(0, 0), (5000, 0)])
        sim.run(until=20.0)
        assert net.nodes[1].routing.role == HEAD

    def test_head_contention_lower_id_wins(self):
        sim, net = make_net(CLIQUE3)
        sim.run(until=20.0)
        # Force node 1 to head; within the contention period it must
        # yield to head 0 again.
        net.nodes[1].routing.role = HEAD
        sim.run(until=20.0 + 4 * 6.0)
        assert net.nodes[1].routing.role == MEMBER

    def test_gateway_detection(self):
        # Two cliques bridged by node 2: 0-1-2 and 2-3-4 style layout.
        positions = [(0, 0), (150, 0), (300, 0), (450, 0), (600, 0)]
        sim, net = make_net(positions)
        sim.run(until=40.0)
        gateways = [n.node_id for n in net.nodes if n.routing.is_gateway()]
        heads = [n.node_id for n in net.nodes if n.routing.role == HEAD]
        # The chain needs forwarding capacity: heads+gateways must bridge it.
        assert heads
        relset = set(gateways) | set(heads)
        assert any(nid in relset for nid in (1, 2, 3))


class TestDiscoveryAndData:
    def test_one_hop_no_discovery(self):
        sim, net = make_net(CLIQUE3)
        log = collect_deliveries(net)
        sim.run(until=10.0)
        net.nodes[1].send(2, 64)
        sim.run(until=15.0)
        assert len(log) == 1
        assert net.nodes[1].routing.stats.discoveries == 0

    def test_multi_hop_delivery(self):
        sim, net = make_net(CHAIN4)
        log = collect_deliveries(net)
        sim.run(until=30.0)  # clusters settle
        net.nodes[0].send(3, 64)
        sim.run(until=40.0)
        assert [(nid, p.src) for nid, p, _ in log] == [(3, 0)]

    def test_pruning_reduces_rreq_forwards(self):
        def rreq_tx(prune, seed=5):
            positions = [
                (x * 150.0, y * 150.0) for x in range(4) for y in range(3)
            ]
            sim, net = make_net(positions, seed=seed, prune_flood=prune)
            collect_deliveries(net)
            sim.run(until=30.0)
            base = sum(n.routing.stats.control_packets for n in net.nodes)
            net.nodes[0].send(11, 64)
            sim.run(until=40.0)
            return sum(n.routing.stats.control_packets for n in net.nodes) - base

        assert rreq_tx(True) < rreq_tx(False)

    def test_partition_gives_up(self):
        sim, net = make_net([(0, 0), (5000, 0)])
        log = collect_deliveries(net)
        sim.run(until=10.0)
        net.nodes[0].send(1, 64)
        sim.run(until=60.0)
        assert log == []
        assert net.nodes[0].routing.stats.drops_buffer == 1


class TestShorteningAndRepair:
    def test_route_shortening_skips_hops(self):
        sim, net = make_net(CHAIN4)
        log = collect_deliveries(net)
        sim.run(until=30.0)
        # Hand node 0 a deliberately long route 0-1-2-3 where 1 can in
        # fact hear 2 only (chain) — shortening is a no-op here. Use a
        # clique instead for a positive case below.
        net.nodes[0].send(3, 64)
        sim.run(until=40.0)
        assert len(log) == 1

    def test_shortening_in_dense_topology(self):
        positions = [(0, 0), (100, 0), (200, 0)]
        sim, net = make_net(positions)
        log = collect_deliveries(net)
        sim.run(until=20.0)
        pkt = net.nodes[0].send(2, 64)
        # Force an inflated route: 0 -> 1 -> 2 where 0 hears 2 directly.
        sim.run(until=25.0)
        assert len(log) == 1
        delivered = log[0][1]
        # Direct neighbor path used (no discovery inflation).
        assert delivered.hops <= 1

    def test_local_repair_bridges_broken_link(self):
        sim, net = make_net(CHAIN4)
        sim.run(until=30.0)
        agent1 = net.nodes[1].routing
        pkt = net.nodes[1].send(3, 64)  # creates and routes a packet
        sim.run(until=31.0)
        victim = net.nodes[1].send(3, 64)
        sim.run(until=32.0)
        # Craft the failure scenario *after* live HELLOs settle: packet's
        # next hop 9 is dead, but neighbor 2 claims 9 as its neighbor.
        e2 = agent1.neighbors.heard(2, sim.now, bidirectional=True)
        e2.meta["neighbors"] = {1, 3, 9}
        victim.route = [0, 1, 9, 3]
        before = agent1.repairs
        agent1.link_failed(victim, next_hop=9)
        assert agent1.repairs == before + 1
        assert victim.route == [0, 1, 2, 9, 3]

    def test_repair_fails_sends_rerr(self):
        sim, net = make_net(CHAIN4)
        sim.run(until=30.0)
        agent2 = net.nodes[2].routing
        victim = net.nodes[0].send(3, 64)
        sim.run(until=31.0)
        victim.route = [0, 1, 2, 9]
        victim.src = 0
        before = agent2.stats.control_packets
        agent2.link_failed(victim, next_hop=9)
        assert agent2.stats.control_packets == before + 1  # the RERR

    def test_rerr_cleans_cache(self):
        sim, net = make_net(CHAIN4)
        agent0 = net.nodes[0].routing
        agent0.cache.add((0, 1, 2, 3), now=0.0)
        rerr = agent0.make_control(CbrpRerr(2, 3, 0), 16, dst=0)
        agent0._on_rerr(rerr, rerr.payload)
        assert agent0.cache.get(3, sim.now) is None
