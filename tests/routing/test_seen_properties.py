"""Property tests for the bounded duplicate-suppression caches.

The seen-caches guard every flooding protocol's relay decision; their
bound invariants must hold for *any* mark sequence, not just the ones
the protocol tests happen to produce — exactly the job for hypothesis.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing.seen import SeenCache, SeenSet

# Small key space forces duplicates; small caps force evictions.
_KEYS = st.integers(min_value=0, max_value=50)


class TestSeenSetProperties:
    @given(keys=st.lists(_KEYS, max_size=200), cap=st.integers(1, 8))
    def test_never_exceeds_capacity(self, keys, cap):
        s = SeenSet(cap=cap)
        for k in keys:
            s.mark(k)
            assert len(s) <= cap

    @given(keys=st.lists(_KEYS, max_size=200), cap=st.integers(1, 8))
    def test_fifo_eviction_keeps_newest(self, keys, cap):
        # After any sequence, the cache holds exactly the last `cap`
        # distinct keys in insertion order (uids are monotone in real
        # use; here we just compare against the reference semantics).
        s = SeenSet(cap=cap)
        inserted = []
        for k in keys:
            if s.mark(k):
                inserted.append(k)
        expected = set(inserted[-cap:])
        assert set(s._seen) == expected

    @given(keys=st.lists(_KEYS, max_size=200), cap=st.integers(1, 8))
    def test_mark_is_duplicate_detection(self, keys, cap):
        # mark() returns False iff the key is currently held.
        s = SeenSet(cap=cap)
        for k in keys:
            held = k in s
            assert s.mark(k) == (not held)

    def test_membership_after_eviction(self):
        s = SeenSet(cap=2)
        s.mark(1)
        s.mark(2)
        s.mark(3)  # evicts 1
        assert 1 not in s
        assert 2 in s and 3 in s


class TestSeenCacheProperties:
    @given(
        marks=st.lists(
            st.tuples(_KEYS, st.floats(0.0, 1000.0)), min_size=1, max_size=200
        ),
        cap=st.integers(1, 16),
        horizon=st.floats(0.1, 100.0),
    )
    @settings(max_examples=200)
    def test_prune_invariant(self, marks, cap, horizon):
        # After every *inserting* mark at time `now`: either the cache
        # is within its capacity, or every surviving entry is younger
        # than the aging horizon (the prune keeps t >= now - horizon).
        # Duplicate marks don't insert, so they don't trigger a prune.
        c = SeenCache(horizon=horizon, cap=cap)
        marks.sort(key=lambda kv: kv[1])  # sim time is monotone
        for k, now in marks:
            inserted = c.mark(k, now)
            if inserted and len(c) > cap:
                assert all(t >= now - horizon for t in c._seen.values())

    @given(
        marks=st.lists(
            st.tuples(_KEYS, st.floats(0.0, 1000.0)), min_size=1, max_size=200
        ),
        cap=st.integers(1, 16),
    )
    def test_mark_is_duplicate_detection(self, marks, cap):
        c = SeenCache(horizon=10.0, cap=cap)
        marks.sort(key=lambda kv: kv[1])
        for k, now in marks:
            held = k in c
            assert c.mark(k, now) == (not held)

    @given(keys=st.sets(_KEYS, min_size=1, max_size=20))
    def test_insert_is_unconditional(self, keys):
        c = SeenCache(horizon=10.0, cap=4)
        for k in keys:
            c.insert(k, 0.0)
            assert k in c
        # insert never prunes; all keys coexist regardless of cap.
        assert len(c) == len(keys)

    def test_old_entries_age_out_under_pressure(self):
        c = SeenCache(horizon=5.0, cap=2)
        c.mark("old", 0.0)
        c.mark("mid", 8.0)
        c.mark("new", 10.0)  # overflow triggers prune at cutoff 5.0
        assert "old" not in c
        assert "mid" in c and "new" in c
