"""RoutingProtocol base-class helpers."""

import pytest

from repro.net import BROADCAST, Packet, PacketKind
from repro.routing.base import RoutingProtocol, RoutingStats
from tests.routing.conftest import make_static_network


class EchoProtocol(RoutingProtocol):
    """Minimal concrete protocol for base-class testing."""

    NAME = "echo"

    def __init__(self, sim, node_id, mac, rng):
        super().__init__(sim, node_id, mac, rng)
        self.control_seen = []
        self.forward_seen = []

    def originate(self, packet):
        self.send_data(packet, packet.dst, forwarded=False)

    def on_control(self, packet, prev_hop, rx_power):
        self.control_seen.append((packet, prev_hop))

    def on_data_to_forward(self, packet, prev_hop, rx_power):
        self.forward_seen.append(packet)


def make_pair():
    return make_static_network(
        [(0, 0), (100, 0)],
        lambda s, n, m, r: EchoProtocol(s, n, m, r),
        mac="ideal",
    )


class TestControlHelpers:
    def test_make_control_fields(self):
        sim, net = make_pair()
        agent = net.nodes[0].routing
        pkt = agent.make_control({"x": 1}, size=24, ttl=5)
        assert pkt.kind == PacketKind.CONTROL
        assert pkt.proto == "echo"
        assert pkt.src == 0 and pkt.dst == BROADCAST
        assert pkt.ttl == 5 and pkt.size == 24

    def test_send_control_counts_overhead(self):
        sim, net = make_pair()
        agent = net.nodes[0].routing
        pkt = agent.make_control(None, size=30)
        agent.send_control(pkt, BROADCAST)
        assert agent.stats.control_packets == 1
        assert agent.stats.control_bytes == 30

    def test_broadcast_control_is_jittered(self):
        sim, net = make_pair()
        agent = net.nodes[0].routing
        pkt = agent.make_control(None, size=10)
        agent.send_control(pkt, BROADCAST)
        # Nothing on the air yet: the send is scheduled, not immediate.
        assert sim.pending() > 0
        sim.run(until=1.0)
        assert len(net.nodes[1].routing.control_seen) == 1

    def test_unicast_control_immediate(self):
        sim, net = make_pair()
        agent = net.nodes[0].routing
        pkt = agent.make_control(None, size=10, dst=1)
        agent.send_control(pkt, 1, jitter=0.0)
        sim.run(until=1.0)
        assert len(net.nodes[1].routing.control_seen) == 1

    def test_foreign_protocol_control_ignored(self):
        sim, net = make_pair()
        agent1 = net.nodes[1].routing
        foreign = Packet(PacketKind.CONTROL, "alien", 0, BROADCAST, 16, created=0.0)
        agent1.deliver(foreign, prev_hop=0, rx_power=1.0)
        assert agent1.control_seen == []


class TestDataDispatch:
    def test_local_delivery(self):
        sim, net = make_pair()
        got = []
        net.nodes[1].register_receiver(lambda p, prev: got.append(p))
        net.nodes[0].send(1, 64)
        sim.run(until=1.0)
        assert len(got) == 1

    def test_broadcast_data_delivered_locally(self):
        sim, net = make_pair()
        got = []
        net.nodes[1].register_receiver(lambda p, prev: got.append(p))
        pkt = Packet(PacketKind.DATA, "cbr", 0, BROADCAST, 32, created=0.0)
        net.nodes[0].routing.send_data(pkt, BROADCAST, forwarded=False)
        sim.run(until=1.0)
        assert len(got) == 1

    def test_transit_data_routed_to_forward_hook(self):
        sim, net = make_pair()
        agent1 = net.nodes[1].routing
        transit = Packet(PacketKind.DATA, "cbr", 0, 9, 64, created=0.0)
        agent1.deliver(transit, prev_hop=0, rx_power=1.0)
        assert agent1.forward_seen == [transit]

    def test_send_data_ttl_exhaustion(self):
        sim, net = make_pair()
        agent = net.nodes[0].routing
        pkt = Packet(PacketKind.DATA, "cbr", 0, 1, 64, created=0.0, ttl=0)
        ok = agent.send_data(pkt, 1, forwarded=True)
        assert not ok
        assert agent.stats.drops_ttl == 1

    def test_stats_slots(self):
        s = RoutingStats()
        assert s.control_packets == 0
        assert s.discoveries == 0
        with pytest.raises(AttributeError):
            s.nonexistent = 1
