"""Cross-layer integration: full mobile scenarios per protocol."""

import pytest

from repro.scenario import ScenarioConfig, run_scenario

MOBILE = dict(
    n_nodes=20,
    field_size=(1000.0, 300.0),
    duration=60.0,
    n_connections=6,
    traffic_start_window=(0.0, 10.0),
    max_speed=20.0,
    pause_time=0.0,
    seed=9,
)


@pytest.mark.parametrize("protocol,min_pdr", [
    ("dsdv", 0.60),
    ("dsr", 0.85),
    ("aodv", 0.85),
    ("paodv", 0.85),
    ("cbrp", 0.75),
    ("olsr", 0.60),
])
def test_mobile_delivery_floor(protocol, min_pdr):
    """Every protocol must deliver most packets under full mobility."""
    s = run_scenario(ScenarioConfig(protocol=protocol, **MOBILE))
    assert s.pdr >= min_pdr, f"{protocol}: pdr={s.pdr:.3f}"


def test_on_demand_beats_proactive_overhead_when_idle():
    """With a single short flow, reactive protocols send almost nothing
    while proactive ones keep beaconing — the core taxonomy claim."""
    quiet = dict(MOBILE, n_connections=1, duration=60.0)
    dsr = run_scenario(ScenarioConfig(protocol="dsr", **quiet))
    dsdv = run_scenario(ScenarioConfig(protocol="dsdv", **quiet))
    olsr = run_scenario(ScenarioConfig(protocol="olsr", **quiet))
    assert dsr.routing_overhead_packets < dsdv.routing_overhead_packets / 2
    assert dsr.routing_overhead_packets < olsr.routing_overhead_packets / 2


def test_delay_includes_discovery_latency():
    """A reactive protocol's very first packet pays route acquisition;
    a converged proactive table does not."""
    cfg = ScenarioConfig(
        protocol="aodv",
        n_nodes=12,
        field_size=(900.0, 300.0),
        duration=40.0,
        n_connections=3,
        traffic_start_window=(20.0, 25.0),
        mobility="static",
        seed=4,
    )
    aodv = run_scenario(cfg)
    dsdv = run_scenario(cfg.with_(protocol="dsdv"))
    if aodv.data_received and dsdv.data_received:
        # p95 captures first-packet discovery spikes.
        assert aodv.p95_delay >= dsdv.p95_delay * 0.5


def test_static_connected_network_near_perfect():
    """A dense static network is the easy case: everyone delivers."""
    cfg = ScenarioConfig(
        protocol="aodv",
        n_nodes=16,
        field_size=(800.0, 300.0),
        duration=60.0,
        n_connections=5,
        traffic_start_window=(10.0, 15.0),
        mobility="static",
        seed=6,
    )
    for proto in ("dsdv", "dsr", "aodv", "cbrp", "olsr"):
        s = run_scenario(cfg.with_(protocol=proto))
        assert s.pdr > 0.9, f"{proto}: {s.pdr:.3f}"


def test_hop_counts_sane():
    s = run_scenario(ScenarioConfig(protocol="aodv", **MOBILE))
    # Paths exist and are multi-hop on average in a 1000 m field.
    assert 0.0 < s.avg_hops < 10.0


def test_events_scale_linearly_enough():
    """Guard against event-count explosions (performance regression)."""
    from repro.scenario import build_scenario

    scen = build_scenario(ScenarioConfig(protocol="aodv", **MOBILE))
    scen.run()
    # ~60 s, 20 nodes, 6 flows: empirical budget with headroom.
    assert scen.sim.events_processed < 2_000_000
