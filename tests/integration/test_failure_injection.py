"""Failure injection: dead nodes, lost control packets, partitions."""

import pytest

from repro.core import Simulator
from repro.mac import DcfMac
from repro.mobility import Leg, LegBasedModel, StaticPosition
from repro.net import build_network
from repro.phy import RadioParams, UnitDisk
from repro.routing import Aodv, Dsdv, Dsr


def build(positions_or_models, proto_cls, seed=1, promiscuous=False, **proto_kw):
    sim = Simulator(seed=seed)
    models = [
        m if not isinstance(m, tuple) else StaticPosition(*m)
        for m in positions_or_models
    ]
    net = build_network(
        sim,
        models,
        routing_factory=lambda s, nid, mac, rng: proto_cls(s, nid, mac, rng, **proto_kw),
        mac_factory=lambda s, r, g: DcfMac(s, r, g, promiscuous=promiscuous),
        propagation=UnitDisk(250.0),
        radio_params=RadioParams(),
    )
    net.start_routing()
    return sim, net


def kill(node):
    """Make a node deaf and mute (crash fault)."""
    node.mac.send = lambda *a, **k: None
    node.radio.begin_arrival = lambda *a, **k: None


DIAMOND = [
    (0.0, 0.0),       # 0 source
    (200.0, 80.0),    # 1 upper relay
    (200.0, -80.0),   # 2 lower relay
    (400.0, 0.0),     # 3 destination
]


@pytest.mark.parametrize("proto_cls,kwargs", [(Aodv, {}), (Dsr, {})])
def test_reactive_protocols_survive_relay_death(proto_cls, kwargs):
    sim, net = build(DIAMOND, proto_cls, promiscuous=proto_cls is Dsr, **kwargs)
    got = []
    net.nodes[3].register_receiver(lambda p, prev: got.append(p))

    for _ in range(3):
        net.nodes[0].send(3, 64)
    sim.run(until=3.0)
    assert len(got) == 3

    # Kill whichever relay carried the traffic; the other must take over.
    active_relay = 1 if any(
        n.routing.stats.data_forwarded for n in (net.nodes[1],)
    ) else 2
    kill(net.nodes[active_relay])
    for _ in range(3):
        net.nodes[0].send(3, 64)
    sim.run(until=30.0)
    assert len(got) == 6, f"{proto_cls.__name__} lost packets after relay death"


def test_dsdv_recovers_via_periodic_updates():
    sim, net = build(DIAMOND, Dsdv)
    got = []
    net.nodes[3].register_receiver(lambda p, prev: got.append(p))
    sim.run(until=40.0)  # converge
    net.nodes[0].send(3, 64)
    sim.run(until=42.0)
    assert len(got) == 1

    route = net.nodes[0].routing.table[3]
    kill(net.nodes[route.next_hop])
    # DSDV needs link failure + triggered/periodic updates to reroute:
    # keep offering traffic and allow two full update periods.
    for i in range(10):
        sim.schedule(3.0 * i, net.nodes[0].send, 3, 64)
    sim.run(until=90.0)
    assert len(got) >= 2, "DSDV never rerouted after relay death"


def test_partition_heals_when_bridge_arrives():
    """Two islands; a ferry node walks into the gap and bridges them."""

    class Ferry(LegBasedModel):
        """Moves from far away into the midpoint at t=10, then parks."""

        def _next_leg(self, prev):
            if prev.t1 == 0.0:
                return Leg(0.0, 10.0, prev.x1, prev.y1, 400.0, 0.0)
            return Leg(prev.t1, prev.t1 + 1e6, 400.0, 0.0, 400.0, 0.0)

    models = [
        StaticPosition(0.0, 0.0),       # 0 source island
        StaticPosition(200.0, 0.0),     # 1
        StaticPosition(600.0, 0.0),     # 2     (gap 1-2 = 400 m)
        StaticPosition(800.0, 0.0),     # 3 destination island
        Ferry(2000.0, 0.0),             # 4 bridge-to-be
    ]
    sim, net = build(models, Aodv)
    got = []
    net.nodes[3].register_receiver(lambda p, prev: got.append(p))

    net.nodes[0].send(3, 64)   # t=0: partitioned, must fail/buffer
    sim.run(until=5.0)
    assert got == []

    sim.run(until=15.0)        # ferry parked at x=400 bridging 1-2
    net.nodes[0].send(3, 64)
    sim.run(until=25.0)
    assert len(got) >= 1, "route across the healed partition not found"
    # The delivered packet must have crossed the ferry (4 hops total).
    assert got[-1].hops == 3


def test_dropped_control_packets_are_survivable():
    """Randomly dropping 30% of AODV control packets slows but does not
    break discovery (floods are redundant)."""
    sim, net = build(DIAMOND, Aodv, seed=5)
    rng = sim.rng.stream("chaos")

    for node in net.nodes:
        original = node.mac.send

        def lossy(packet, next_hop, _orig=original):
            if packet.kind == "control" and rng.uniform() < 0.3:
                return  # eaten by gremlins
            _orig(packet, next_hop)

        node.mac.send = lossy

    got = []
    net.nodes[3].register_receiver(lambda p, prev: got.append(p))
    for i in range(5):
        sim.schedule(2.0 * i, net.nodes[0].send, 3, 64)
    sim.run(until=60.0)
    assert len(got) >= 3, f"only {len(got)}/5 delivered under control loss"
