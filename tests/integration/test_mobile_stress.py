"""Stress scenarios: sustained mobility, alternate models, determinism."""

import pytest

from repro.scenario import ScenarioConfig, run_scenario

BASE = dict(
    n_nodes=18,
    field_size=(900.0, 300.0),
    duration=50.0,
    n_connections=5,
    traffic_start_window=(0.0, 8.0),
    max_speed=20.0,
)


@pytest.mark.parametrize("mobility", ["walk", "direction", "gauss_markov", "manhattan", "rpgm"])
def test_protocols_survive_alternate_mobility(mobility):
    """AODV must keep delivering under every mobility model."""
    s = run_scenario(ScenarioConfig(protocol="aodv", mobility=mobility, seed=21, **BASE))
    assert s.pdr > 0.6, f"{mobility}: {s.pdr:.3f}"


def test_onoff_traffic_all_protocols():
    for proto in ("dsdv", "dsr", "aodv"):
        s = run_scenario(ScenarioConfig(
            protocol=proto, traffic_model="onoff", seed=22, **BASE
        ))
        assert s.data_sent > 0
        assert s.pdr > 0.5, f"{proto}: {s.pdr:.3f}"


def test_large_packets():
    """512-byte packets (the paper's alternate size) still flow."""
    s = run_scenario(ScenarioConfig(protocol="aodv", packet_size=512, seed=23, **BASE))
    assert s.pdr > 0.7
    assert s.throughput_bps > 0


def test_high_rate_saturation_degrades_gracefully():
    """At 40 pkt/s x 5 flows the medium saturates: delivery drops but
    the simulation completes and conservation holds."""
    s = run_scenario(ScenarioConfig(protocol="aodv", rate=40.0, seed=24, **BASE))
    assert 0.0 < s.pdr <= 1.0
    assert s.drops_ifq + s.drops_retry + s.drops_no_route + s.drops_buffer >= 0
    assert s.data_received <= s.data_sent


def test_cross_protocol_determinism_under_mobility():
    """Two identical mobile runs agree bit-for-bit on every metric."""
    for proto in ("dsr", "cbrp", "olsr"):
        cfg = ScenarioConfig(protocol=proto, seed=25, **BASE)
        a, b = run_scenario(cfg), run_scenario(cfg)
        assert a.row() == b.row(), proto


def test_min_speed_respected():
    cfg = {**BASE, "max_speed": 10.0}
    s = run_scenario(ScenarioConfig(protocol="aodv", min_speed=5.0, seed=26, **cfg))
    assert s.data_sent > 0


def test_two_node_minimal_network():
    s = run_scenario(ScenarioConfig(
        protocol="aodv", n_nodes=2, field_size=(200.0, 200.0),
        duration=20.0, n_connections=1, traffic_start_window=(0.0, 2.0),
        seed=27,
    ))
    assert s.pdr > 0.9  # always in range in a 200 m box
