"""FlightRecorder unit contract: ledger rules, trace export, merging.

The recorder's state machine is the foundation the conservation gate
stands on, so its edge rules are pinned directly: delivery beats any
drop, the first terminal reason beats later ones, verdicts observed
before injection are parked and claimed, unmeasured traffic never
enters the ledger, and sampling thins the *trace* without ever
touching the *accounting*.
"""

import json

import pytest

from repro.core.drops import TERMINAL_VALUES, DropReason
from repro.net.packet import Packet, PacketKind
from repro.obs.flight import (
    FLIGHT_SCHEMA_VERSION,
    FlightRecorder,
    flight_jsonl_str,
    flight_to_chrome,
    load_flight_jsonl,
    merge_flight_partials,
    report_from_state,
    write_flight_jsonl,
)


def _pkt(src=0, dst=1, kind=PacketKind.DATA, origin=None):
    p = Packet(kind, "test", src, dst, 64, created=0.0)
    if origin is not None:
        p.origin_uid = origin
    return p


class TestLedgerRules:
    def test_inject_then_deliver_conserves(self):
        rec = FlightRecorder()
        p = _pkt()
        rec.inject(p)
        rec.deliver(p, node=1)
        report = rec.report()
        assert report["offered"] == 1
        assert report["delivered"] == 1
        assert report["conserved"] is True

    def test_delivery_wins_over_later_drop(self):
        # Multi-copy protocols can lose a copy of a packet that already
        # arrived; the ledger keeps the delivery.
        rec = FlightRecorder()
        p = _pkt()
        rec.inject(p)
        rec.deliver(p, node=1)
        rec.drop(p, DropReason.NO_ROUTE, node=2)
        report = rec.report()
        assert report["delivered"] == 1
        assert report["drops_by_reason"] == {}
        assert report["conserved"] is True

    def test_first_terminal_reason_wins(self):
        rec = FlightRecorder()
        p = _pkt()
        rec.inject(p)
        rec.drop(p, DropReason.IFQ_FULL, node=2)
        rec.drop(p, DropReason.LINK_LOST, node=3)
        assert rec.report()["drops_by_reason"] == {"ifq_full": 1}

    def test_predrop_claimed_at_injection(self):
        # CbrSource originates through the routing agent *before* the
        # metrics on_send hook fires, so a synchronous no-route drop is
        # observed before inject and must be parked, not lost.
        rec = FlightRecorder()
        p = _pkt()
        rec.drop(p, DropReason.NO_ROUTE, node=0)
        rec.inject(p)
        report = rec.report()
        assert report["offered"] == 1
        assert report["drops_by_reason"] == {"no_route": 1}
        assert report["conserved"] is True

    def test_unmeasured_inject_discards_predrop(self):
        rec = FlightRecorder()
        p = _pkt()
        rec.drop(p, DropReason.NO_ROUTE, node=0)
        rec.inject(p, measured=False)
        report = rec.report()
        assert report["offered"] == 0
        assert report["drops_by_reason"] == {}
        assert not rec._predrop

    def test_control_and_none_packets_ignored(self):
        rec = FlightRecorder()
        rec.drop(None, DropReason.NO_ROUTE)
        rec.drop(_pkt(kind=PacketKind.CONTROL), DropReason.IFQ_FULL)
        assert rec.report()["offered"] == 0
        assert not rec._state and not rec._predrop

    def test_frame_level_reasons_are_not_terminal(self):
        # MAC retry exhaustion is a *frame* fate — the routing layer
        # decides the packet's (salvage, re-buffer, repair, or drop).
        rec = FlightRecorder()
        p = _pkt()
        rec.inject(p)
        rec.drop(p, DropReason.MAC_RETRY_LIMIT, node=2)
        report = rec.report()
        assert report["drops_by_reason"] == {}
        assert report["unaccounted"] == 1  # still live, not consumed
        assert "mac_retry_limit" not in TERMINAL_VALUES

    def test_in_flight_residue_counts_as_accounted(self):
        rec = FlightRecorder()
        p = _pkt()
        rec.inject(p)
        assert rec._mark_in_flight(p) == 1
        report = rec.report()
        assert report["in_flight"] == 1
        assert report["conserved"] is True


class TestSampling:
    def test_sampling_thins_trace_not_accounting(self):
        rec = FlightRecorder(trace=True, sample=4)
        pkts = [_pkt(origin=i) for i in range(8)]
        for p in pkts:
            rec.inject(p)
            rec.deliver(p, node=1)
        # Accounting: complete.
        report = rec.report()
        assert report["offered"] == 8
        assert report["delivered"] == 8
        # Trace: only origins 0 and 4 recorded (uid % 4 == 0).
        origins = {e["origin"] for e in rec.events}
        assert origins == {0, 4}
        assert rec.sampled(0) and not rec.sampled(1)

    def test_no_trace_means_no_events(self):
        rec = FlightRecorder(trace=False)
        p = _pkt()
        rec.inject(p)
        rec.note("forward", p.origin_uid, 3)
        rec.deliver(p, node=1)
        assert rec.events == []
        assert not rec.sampled(p.origin_uid)


class TestReportMath:
    def test_report_from_state_identity(self):
        state = {
            1: "delivered", 2: "delivered", 3: "no_route",
            4: "in_flight", 5: "ifq_full",
        }
        report = report_from_state(5, state)
        assert report["offered"] == 5
        assert report["delivered"] == 2
        assert report["in_flight"] == 1
        assert report["drops_by_reason"] == {"ifq_full": 1, "no_route": 1}
        assert report["unaccounted"] == 0
        assert report["conserved"] is True

    def test_live_leftovers_break_conservation(self):
        report = report_from_state(2, {1: "delivered", 2: "live"})
        assert report["unaccounted"] == 1
        assert report["conserved"] is False

    def test_missing_entries_break_conservation(self):
        # offered counted but state lost: the identity must fail loudly.
        report = report_from_state(3, {1: "delivered"})
        assert report["conserved"] is False


class TestMerging:
    def _shard(self, base, n, reason=None):
        rec = FlightRecorder(trace=True)
        for i in range(n):
            p = _pkt(origin=base + i)
            rec.inject(p)
            if reason is None:
                rec.deliver(p, node=1)
            else:
                rec.drop(p, reason, node=2)
        return rec.partial()

    def test_merge_unions_disjoint_uid_spaces(self):
        a = self._shard(0 << 48, 3)
        b = self._shard(1 << 48, 2, reason=DropReason.NO_ROUTE)
        merged = merge_flight_partials([a, b])
        assert merged["offered"] == 5
        assert merged["delivered"] == 3
        assert merged["drops_by_reason"] == {"no_route": 2}
        assert merged["conserved"] is True

    def test_merge_sorts_events_by_time_then_origin(self):
        a = self._shard(0 << 48, 2)
        b = self._shard(1 << 48, 2)
        merged = merge_flight_partials([a, b])
        keys = [(e["t"], e["origin"]) for e in merged["events"]]
        assert keys == sorted(keys)

    def test_merge_tolerates_missing_partials(self):
        assert merge_flight_partials([None, None]) is None
        only = merge_flight_partials([None, self._shard(0, 1)])
        assert only["offered"] == 1


class TestExport:
    def _traced(self):
        rec = FlightRecorder(trace=True)
        p = _pkt(origin=0, src=5, dst=9)
        rec.inject(p)
        rec.note("forward", 0, 7, next_hop=9)
        rec.deliver(p, node=9)
        return rec.summary_dict()

    def test_jsonl_round_trip(self, tmp_path):
        flight = self._traced()
        path = tmp_path / "flight.jsonl"
        write_flight_jsonl(flight, path)
        loaded = load_flight_jsonl(path)
        assert loaded["schema"] == FLIGHT_SCHEMA_VERSION
        assert loaded["events"] == flight["events"]
        assert loaded["offered"] == flight["offered"]
        assert loaded["conserved"] is True

    def test_jsonl_str_shape(self):
        lines = flight_jsonl_str(self._traced()).splitlines()
        assert json.loads(lines[0])["flight_schema"] == FLIGHT_SCHEMA_VERSION
        assert "report" in json.loads(lines[-1])
        assert json.loads(lines[1])["ev"] == "inject"

    def test_load_tolerates_headerless_events_only(self, tmp_path):
        path = tmp_path / "partial.jsonl"
        path.write_text(
            '{"t": 1.0, "ev": "inject", "origin": 3, "node": 0}\n'
        )
        loaded = load_flight_jsonl(path)
        assert loaded["schema"] == FLIGHT_SCHEMA_VERSION
        assert len(loaded["events"]) == 1

    def test_chrome_export_draws_flows(self):
        chrome = flight_to_chrome(self._traced())
        events = chrome["traceEvents"]
        instants = [e for e in events if e["ph"] == "i"]
        flows = [e for e in events if e["ph"] in ("s", "t", "f")]
        assert len(instants) == 3
        # A 3-event packet chains start -> step -> finish.
        assert [f["ph"] for f in flows] == ["s", "t", "f"]
        assert flows[-1]["bp"] == "e"
        # Timestamps are microseconds on tid = node.
        assert instants[0]["tid"] == 5
        assert all(e["cat"] == "flight" for e in events)

    def test_chrome_export_single_event_has_no_flow(self):
        rec = FlightRecorder(trace=True)
        p = _pkt(origin=0)
        rec.inject(p)
        chrome = flight_to_chrome(rec.summary_dict())
        assert all(e["ph"] == "i" for e in chrome["traceEvents"])


def test_terminal_values_cover_every_terminal_member():
    terminal = {
        DropReason.NO_ROUTE, DropReason.TTL_EXPIRED,
        DropReason.SEND_BUFFER_FULL, DropReason.SEND_BUFFER_EXPIRED,
        DropReason.SEND_BUFFER_GIVEUP, DropReason.IFQ_FULL,
        DropReason.IFQ_EVICTED, DropReason.LINK_LOST,
        DropReason.SALVAGE_LIMIT, DropReason.NODE_DOWN,
        DropReason.CRASH_QUEUE,
    }
    assert {r.value for r in terminal} == set(TERMINAL_VALUES)


def test_recorder_reads_sim_clock():
    class FakeSim:
        _now = 2.5

    rec = FlightRecorder(sim=FakeSim(), trace=True)
    p = _pkt(origin=0)
    rec.inject(p)
    assert rec.events[0]["t"] == pytest.approx(2.5)
