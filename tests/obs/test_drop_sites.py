"""Meta-test: every packet-drop site feeds the flight recorder.

Conservation only holds if no code path discards a data packet without
telling the ledger. Grepping the source for drop-counter increments
and requiring a flight hook in the surrounding lines turns "someone
added a drop site and forgot the recorder" from a silent leak (caught
only if a scenario happens to exercise it) into an immediate, named
test failure.

Exempted sites are *frame-level* fates: MAC retry exhaustion and the
fault manager's per-frame RX filters don't consume the packet — the
MAC retries and, on exhaustion, routing's ``link_failed`` owns the
verdict (salvage / re-buffer / repair / terminal drop).
"""

import re
from pathlib import Path

from repro.core.drops import TERMINAL_VALUES, DropReason

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

#: Layers whose counters track packet discards.
LAYERS = ("routing", "mac", "net", "faults")

#: Matches any drop-counter bump: ``drops_no_route += 1``,
#: ``self.drops += 1``, ``crash_queue_drops += 1`` ...
_SITE = re.compile(r"(?:\.|\b)(\w*drops\w*)\s*\+=\s*1")

#: A flight hook (or the recorder gate) near the site.
_HOOK = re.compile(r"flight")

#: How many lines around the increment may carry the hook.
WINDOW = 10

#: (file relative to src/repro, counter) pairs that are frame-level by
#: design — the packet survives the event, so no ledger verdict here.
EXEMPT = {
    # Retry exhaustion hands the packet to routing.link_failed.
    ("mac/base.py", "drops_retry_limit"),
    # Per-frame RX filters: the sender's MAC never sees an ACK and
    # retries; the packet's fate is decided at retry exhaustion.
    ("faults/manager.py", "down_rx_drops"),
    ("faults/manager.py", "partition_drops"),
    ("faults/manager.py", "link_drops"),
}


def _drop_sites():
    for layer in LAYERS:
        for path in sorted((SRC / layer).glob("*.py")):
            lines = path.read_text().splitlines()
            for i, line in enumerate(lines):
                m = _SITE.search(line)
                if m:
                    yield path, i, m.group(1), lines


def test_every_drop_site_has_a_flight_hook_nearby():
    missing = []
    for path, i, counter, lines in _drop_sites():
        rel = str(path.relative_to(SRC))
        if (rel, counter) in EXEMPT:
            continue
        lo = max(0, i - WINDOW)
        hi = min(len(lines), i + WINDOW + 1)
        if not any(_HOOK.search(lines[j]) for j in range(lo, hi)):
            missing.append(f"{rel}:{i + 1} ({counter})")
    assert not missing, (
        "drop sites without a flight hook within "
        f"{WINDOW} lines (wire the recorder or add a justified "
        f"exemption): {missing}"
    )


def test_exemption_list_stays_honest():
    """Every exemption matches a real site — stale entries rot."""
    seen = {
        (str(path.relative_to(SRC)), counter)
        for path, _i, counter, _lines in _drop_sites()
    }
    stale = EXEMPT - seen
    assert not stale, f"exempted drop sites no longer exist: {stale}"


def test_every_terminal_reason_has_a_call_site():
    """The taxonomy carries no dead reasons: each terminal member is
    raised somewhere in the source tree."""
    text = "\n".join(
        p.read_text() for p in SRC.rglob("*.py") if "drops.py" not in p.name
    )
    unused = [
        r.name for r in DropReason
        if r.value in TERMINAL_VALUES and f"DropReason.{r.name}" not in text
    ]
    assert not unused, f"terminal DropReasons never raised: {unused}"
