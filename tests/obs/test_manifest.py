"""Manifests and the progress line: provenance, reconciliation, resume."""

import io
import json

import pytest

from repro.obs.manifest import (
    MANIFEST_SCHEMA_VERSION,
    ProgressLine,
    build_manifest,
    manifest_summary_pairs,
    write_manifest,
)
from repro.scenario.config import ScenarioConfig
from repro.scenario.executor import SweepExecutor

SMALL = dict(
    protocol="aodv",
    n_nodes=6,
    field_size=(250.0, 250.0),
    duration=5.0,
    n_connections=2,
    rate=1.0,
    packet_size=64,
    traffic_start_window=(0.0, 1.0),
)


def _configs(n, **over):
    return [
        ScenarioConfig(**{**SMALL, **over}, seed=100 + i) for i in range(n)
    ]


def _manifest(**over):
    base = dict(
        job_keys=["a", "b", "c"],
        jobs_executed=2,
        jobs_from_cache=1,
        jobs_resumed=1,
        failures=[],
        retries=0,
        timeouts=0,
        pool_restarts=0,
        workers=2,
        chunksize=1,
        wall_time_s=1.0,
        job_wall_times_s={0: 0.4, 1: 0.6},
        resume=True,
        cache_salt="test-salt",
    )
    base.update(over)
    return build_manifest(**base)


def test_manifest_records_provenance():
    m = _manifest()
    assert m["schema"] == MANIFEST_SCHEMA_VERSION
    assert m["cache_salt"] == "test-salt"
    assert len(m["sweep_key"]) == 64
    assert m["python"] and m["platform"]
    # Only MANETSIM_* knobs are captured, never the whole environment.
    assert all(k.startswith("MANETSIM_") for k in m["env"])


def test_sweep_key_is_order_insensitive():
    a = _manifest(job_keys=["x", "y", "z"])
    b = _manifest(job_keys=["z", "x", "y"])
    c = _manifest(job_keys=["x", "y", "w"])
    assert a["sweep_key"] == b["sweep_key"]
    assert a["sweep_key"] != c["sweep_key"]


def test_worker_utilization_bounded():
    m = _manifest(job_wall_times_s={0: 10.0, 1: 10.0}, wall_time_s=1.0)
    assert m["worker_utilization"] == 1.0
    m = _manifest(job_wall_times_s={}, wall_time_s=0.0)
    assert m["worker_utilization"] == 0.0


def test_write_manifest_roundtrip(tmp_path):
    path = tmp_path / "deep" / "manifest.json"
    m = _manifest()
    write_manifest(m, path)
    assert json.loads(path.read_text()) == m


def test_summary_pairs_render():
    pairs = manifest_summary_pairs(_manifest())
    assert pairs["jobs total"] == 3
    assert pairs["jobs from cache"] == 1
    assert "job wall time mean/max (s)" in pairs


class TestHardenedRendering:
    """Old, trimmed, or hand-edited manifests still render.

    ``obs report`` is a forensic tool — it gets pointed at artifacts
    from older writers and from runs that died halfway. Missing or
    junk optional sections must degrade to placeholders, never raise.
    """

    def test_summary_pairs_survive_a_gutted_manifest(self):
        pairs = manifest_summary_pairs({})
        assert pairs["sweep key"] == "?"
        assert pairs["jobs total"] == 0
        assert pairs["wall time (s)"] == 0.0
        assert "job wall time mean/max (s)" not in pairs
        assert "fabric broker" not in pairs

    def test_summary_pairs_coerce_junk_fields(self):
        pairs = manifest_summary_pairs({
            "sweep_key": None,
            "created_unix": "not-a-timestamp",
            "git_sha": None,
            "wall_time_s": "fast",
            "worker_utilization": None,
            "job_wall_times_s": {"0": 0.5, "1": "oops", "2": None},
            "fabric": "not-a-dict",
        })
        assert pairs["sweep key"] == "?"
        assert pairs["git sha"] == "n/a"
        assert pairs["wall time (s)"] == 0.0
        assert pairs["worker utilization"] == 0.0
        # The one parseable wall time still produces the stat line.
        assert pairs["job wall time mean/max (s)"] == "0.500 / 0.500"
        assert "fabric broker" not in pairs

    def test_report_renders_null_failures_section(self):
        from repro.obs.report import render_manifest_report

        text = render_manifest_report({"failures": None})
        assert "Sweep manifest" in text
        assert "failures" not in text

    def test_report_renders_non_dict_failure_entries(self):
        from repro.obs.report import render_manifest_report

        text = render_manifest_report(
            {"failures": ["worker exploded", {"index": 3,
                                             "kind": "timeout",
                                             "attempts": 2}]}
        )
        assert "failures (2):" in text
        assert "'worker exploded'" in text
        assert "#3 timeout after 2 attempt(s)" in text

    def test_profile_table_zero_fills_damaged_spans(self):
        from repro.obs.report import render_profile_table

        text = render_profile_table({
            "event-loop": {"calls": 2, "wall_s": 0.5, "self_s": 0.5},
            "corrupted": "not-a-dict",
        })
        assert "event-loop" in text and "corrupted" in text
        assert "100.0" in text  # the intact span owns all self time

    def test_profile_table_empty(self):
        from repro.obs.report import render_profile_table

        assert "no spans" in render_profile_table({})


class TestProgressLine:
    def test_counts_and_eta(self):
        buf = io.StringIO()
        p = ProgressLine(4, stream=buf)
        p.update(ok=True)
        p.update(ok=False)
        assert p.done == 2 and p.failures == 1
        line = p.line()
        assert "sweep 2/4" in line and "1 failed" in line and "eta" in line
        p.update()
        p.update()
        assert "done" in p.line()
        p.finish()
        assert buf.getvalue().endswith("\n")

    def test_cached_points_seed_done_but_not_rate(self):
        buf = io.StringIO()
        p = ProgressLine(10, already_done=7, stream=buf)
        assert p.done == 7 and p.fresh == 0
        assert "7 cached" in p.line()
        p.update(ok=True)
        # Rate counts only the one fresh job, never the 7 cached ones.
        assert p.done == 8 and p.fresh == 1
        assert p.line().startswith("[sweep 8/10")

    def test_zero_total_renders_nothing(self):
        buf = io.StringIO()
        p = ProgressLine(0, stream=buf)
        p.finish()
        assert buf.getvalue() == ""


class TestExecutorManifest:
    def test_manifest_reconciles_with_results(self, tmp_path):
        ex = SweepExecutor(processes=1, cache_dir=str(tmp_path), use_cache=True)
        try:
            configs = _configs(3)
            ex.run(configs)
            m = ex.last_manifest
            assert m is not None
            assert m["jobs_total"] == 3
            assert m["jobs_total"] == m["jobs_executed"] + m["jobs_from_cache"]
            assert m["jobs_executed"] == 3 and m["jobs_from_cache"] == 0
            assert m["jobs_failed"] == 0 and m["failures"] == []
            # Written next to the journal.
            on_disk = json.loads(ex.manifest_path.read_text())
            assert on_disk["sweep_key"] == m["sweep_key"]
            assert len(m["job_wall_times_s"]) == 3
            assert all(v >= 0 for v in m["job_wall_times_s"].values())

            # Second pass: everything cached, nothing executed.
            ex.run(configs)
            m2 = ex.last_manifest
            assert m2["jobs_from_cache"] == 3 and m2["jobs_executed"] == 0
            assert m2["jobs_total"] == (
                m2["jobs_executed"] + m2["jobs_from_cache"]
            )
            assert m2["sweep_key"] == m["sweep_key"]
        finally:
            ex.close()

    def test_resume_counts_journal_points_as_completed(self, tmp_path):
        ex = SweepExecutor(processes=1, cache_dir=str(tmp_path), use_cache=True)
        try:
            configs = _configs(4)
            ex.run(configs[:2])  # journal two points
            ex.run(configs, resume=True)
            m = ex.last_manifest
            assert m["resume"] is True
            assert m["jobs_resumed"] == 2
            assert m["jobs_from_cache"] == 2
            assert m["jobs_executed"] == 2
            assert m["jobs_resumed"] <= m["jobs_from_cache"]
            assert m["jobs_total"] == m["jobs_executed"] + m["jobs_from_cache"]
            # Reconcile against the journal itself: every point of the
            # resumed sweep now has an ok record, and the resumed count
            # equals the points journaled before the second run.
            ok_keys = {
                json.loads(line)["key"]
                for line in ex.journal_path.read_text().splitlines()
                if json.loads(line).get("status") == "ok"
            }
            assert len(ok_keys) == m["jobs_total"]
        finally:
            ex.close()

    def test_failures_taxonomized_in_manifest(self, tmp_path, monkeypatch):
        import repro.scenario.executor as executor_mod

        def boom(cfg):
            raise RuntimeError("synthetic worker failure")

        monkeypatch.setattr(executor_mod, "run_scenario", boom)
        ex = SweepExecutor(processes=1, cache_dir=str(tmp_path), use_cache=True)
        try:
            results = ex.run(_configs(1))
            m = ex.last_manifest
            assert m["jobs_failed"] == 1
            assert m["failures"][0]["kind"] == "exception"
            assert m["failures"][0]["index"] == 0
            assert "synthetic worker failure" in m["failures"][0]["error"]
            assert results[0].failed
        finally:
            ex.close()

    def test_no_cache_keeps_manifest_in_memory_only(self, tmp_path):
        ex = SweepExecutor(
            processes=1, cache_dir=str(tmp_path), use_cache=False
        )
        try:
            ex.run(_configs(2))
            assert ex.last_manifest is not None
            assert ex.last_manifest_path is None
            assert not ex.manifest_path.exists()
        finally:
            ex.close()

    def test_progress_resume_accounting(self, tmp_path, capsys):
        ex = SweepExecutor(processes=1, cache_dir=str(tmp_path), use_cache=True)
        try:
            configs = _configs(3)
            ex.run(configs[:2])
            capsys.readouterr()
            ex.run(configs, resume=True, progress=True)
            err = capsys.readouterr().err
            # Cached points are pre-counted, and the final state shows
            # every point done with the cached count called out.
            assert "sweep 3/3" in err
            assert "2 cached" in err
            assert err.endswith("\n")
        finally:
            ex.close()
