"""End-to-end packet conservation and flight-recorder determinism.

Two contracts, pinned across all five paper protocols:

* **Conservation**: with the recorder on, every measured data packet
  ends exactly one of delivered / dropped-for-a-reason / in-flight —
  ``offered == delivered + Σ drops_by_reason + in_flight`` with zero
  unaccounted — on clean runs, faulted runs, random topologies, and
  sharded islands. A violated identity means a drop site is missing
  from the taxonomy.
* **See-but-don't-touch**: a seeded run is bit-identical with the
  recorder on or off (``flight`` is excluded from summary equality;
  everything else must match, per-flow delays included), including the
  traced variant. The recorder must never change results.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.plan import FaultPlanConfig
from repro.scenario import ScenarioConfig, run_scenario

PROTOCOLS = ["dsdv", "dsr", "aodv", "paodv", "cbrp"]

SMALL = dict(
    n_nodes=20,
    field_size=(900.0, 300.0),
    duration=30.0,
    n_connections=6,
    traffic_start_window=(0.0, 6.0),
)

#: Paper-scale scenario: 50 nodes on the 1500x300 field.
PAPER = dict(
    n_nodes=50,
    field_size=(1500.0, 300.0),
    duration=60.0,
    n_connections=10,
    traffic_start_window=(0.0, 12.0),
)


def _assert_conserved(flight):
    assert flight is not None
    assert flight["unaccounted"] == 0
    assert flight["offered"] == (
        flight["delivered"]
        + sum(flight["drops_by_reason"].values())
        + flight["in_flight"]
    )
    assert flight["conserved"] is True


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_conservation_paper_scale(protocol):
    """The headline gate: conservation at paper density, all protocols."""
    cfg = ScenarioConfig(protocol=protocol, flight=True, seed=5, **PAPER)
    summary = run_scenario(cfg)
    _assert_conserved(summary.flight)
    assert summary.flight["offered"] == summary.data_sent
    assert summary.flight["delivered"] == summary.data_received


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_counter_tier_bounds_flight_ledger(protocol):
    """Two-tier consistency: counters count drop *events*, the ledger
    counts packet *fates*. Delivery-wins and first-terminal-wins can
    absorb later drop events (a lost copy of a delivered packet, a
    second discard of an already-dead packet), so the ledger is
    bounded by the counters per reason — never the other way around,
    which would mean a fate with no counted event behind it."""
    cfg = ScenarioConfig(protocol=protocol, flight=True, seed=5, **PAPER)
    summary = run_scenario(cfg)
    ledger = summary.flight["drops_by_reason"]
    counters = summary.drops_by_reason
    assert set(ledger) <= set(counters)
    for reason, n in ledger.items():
        assert n <= counters[reason], reason


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_recorder_is_bit_identical(protocol, monkeypatch):
    """Recorder on ≡ off: full metric surface and per-flow delays."""
    # This test *is* the on/off comparison, so the CI flight leg's
    # force knob must not quietly attach a recorder to the "off" run.
    monkeypatch.delenv("MANETSIM_FLIGHT", raising=False)
    cfg = ScenarioConfig(protocol=protocol, seed=7, **SMALL)
    plain = run_scenario(cfg)
    recorded = run_scenario(cfg.with_(flight=True))
    assert plain.flight is None and recorded.flight is not None
    assert plain == recorded
    assert set(plain.flows) == set(recorded.flows)
    for fid, flow in plain.flows.items():
        assert flow.delays == recorded.flows[fid].delays


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_tracing_is_bit_identical(protocol):
    """Causal tracing on ≡ off (the trace rides the same run that the
    plain config produces — events recorded, results untouched)."""
    cfg = ScenarioConfig(protocol=protocol, seed=7, **SMALL)
    plain = run_scenario(cfg)
    traced = run_scenario(cfg.with_(flight=True, flight_trace=True))
    assert traced.flight["events"]
    assert plain == traced
    for fid, flow in plain.flows.items():
        assert flow.delays == traced.flows[fid].delays


def test_trace_events_tell_a_causal_story():
    cfg = ScenarioConfig(
        protocol="aodv", flight=True, flight_trace=True, seed=7, **SMALL
    )
    summary = run_scenario(cfg)
    events = summary.flight["events"]
    kinds = {e["ev"] for e in events}
    assert "inject" in kinds and "deliver" in kinds
    assert "mac_attempt" in kinds
    # Per-packet streams are time-ordered and start at injection.
    by_origin = {}
    for e in events:
        by_origin.setdefault(e["origin"], []).append(e)
    for evs in by_origin.values():
        ts = [e["t"] for e in evs]
        assert ts == sorted(ts)
    delivered = [
        evs for evs in by_origin.values()
        if any(e["ev"] == "deliver" for e in evs)
    ]
    assert delivered
    for evs in delivered:
        # Injection happens at origination time (the synchronous
        # originate path can log routing events first, at the same t).
        inject_ts = [e["t"] for e in evs if e["ev"] == "inject"]
        assert inject_ts and inject_ts[0] == evs[0]["t"]


def test_conservation_under_faults():
    """Crashes, downtime, and link loss must not leak packets: every
    casualty lands in a named bucket (node_down, crash_queue, ...)."""
    cfg = ScenarioConfig(
        protocol="aodv",
        flight=True,
        seed=11,
        faults=FaultPlanConfig(
            churn_rate=0.04, mean_downtime=3.0, link_loss=0.08
        ),
        **SMALL,
    )
    summary = run_scenario(cfg)
    assert summary.fault_crashes > 0
    _assert_conserved(summary.flight)


def test_faulted_recorder_is_bit_identical():
    cfg = ScenarioConfig(
        protocol="aodv",
        seed=11,
        faults=FaultPlanConfig(churn_rate=0.04, mean_downtime=3.0),
        **SMALL,
    )
    plain = run_scenario(cfg)
    recorded = run_scenario(cfg.with_(flight=True))
    assert plain == recorded


@given(
    n_nodes=st.integers(min_value=5, max_value=14),
    seed=st.integers(min_value=0, max_value=2**20),
    protocol=st.sampled_from(PROTOCOLS),
)
@settings(max_examples=12, deadline=None)
def test_conservation_property_random_topologies(n_nodes, seed, protocol):
    """Property: conservation on arbitrary small topologies.

    Hypothesis drives node count, seed, and protocol; every example
    must close its ledger with zero unaccounted packets."""
    cfg = ScenarioConfig(
        protocol=protocol,
        flight=True,
        n_nodes=n_nodes,
        field_size=(500.0, 300.0),
        duration=8.0,
        n_connections=min(3, n_nodes - 1),
        traffic_start_window=(0.0, 2.0),
        seed=seed,
    )
    _assert_conserved(run_scenario(cfg).flight)


@given(
    seed=st.integers(min_value=0, max_value=2**20),
    churn=st.floats(min_value=0.0, max_value=0.08),
    link_loss=st.floats(min_value=0.0, max_value=0.15),
)
@settings(max_examples=8, deadline=None)
def test_conservation_property_faulted(seed, churn, link_loss):
    """Property: conservation under arbitrary fault pressure."""
    cfg = ScenarioConfig(
        protocol="aodv",
        flight=True,
        n_nodes=12,
        field_size=(500.0, 300.0),
        duration=10.0,
        n_connections=3,
        traffic_start_window=(0.0, 2.0),
        seed=seed,
        faults=FaultPlanConfig(
            churn_rate=churn, mean_downtime=2.0, link_loss=link_loss
        ),
    )
    _assert_conserved(run_scenario(cfg).flight)


# --------------------------------------------------------------- sharding

#: Paper-density clustered field (same recipe as the shard engine pins).
_SHARD_DENSITY = 50 / (1500.0 * 300.0)


def _island_cfg(protocol, n_nodes, seed, n_clusters=4, **over):
    strip = n_nodes / n_clusters / _SHARD_DENSITY / 300.0
    width = n_clusters * strip + (n_clusters - 1) * 700.0
    merged = dict(
        n_nodes=n_nodes,
        field_size=(width, 300.0),
        mobility="static",
        placement="clusters",
        n_clusters=n_clusters,
        cluster_gap=700.0,
        duration=15.0,
        n_connections=max(4, n_nodes // 10),
        traffic_start_window=(0.0, 4.0),
        seed=seed,
    )
    merged.update(over)
    return ScenarioConfig(protocol=protocol, flight=True, **merged)


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_sharded_conservation_and_stitching(protocol, monkeypatch):
    """4-shard island run: the stitched ledger conserves, matches the
    single loop's flight report, and the summary stays bit-identical."""
    from repro.shard import run_sharded

    monkeypatch.setenv("MANETSIM_SHARD_STRICT", "1")
    cfg = _island_cfg(protocol, n_nodes=120, seed=13)
    single = run_scenario(cfg, shards=1)
    sharded = run_sharded(cfg, 4, exec_mode="inline")
    _assert_conserved(single.flight)
    _assert_conserved(sharded.flight)
    assert sharded.flight == single.flight
    assert sharded == single


def test_sharded_trace_stitching_sorts_by_time_then_origin(monkeypatch):
    """Shards own disjoint uid blocks; their event streams must merge
    into one globally ordered trace."""
    from repro.shard import run_sharded

    monkeypatch.setenv("MANETSIM_SHARD_STRICT", "1")
    cfg = _island_cfg("aodv", n_nodes=80, seed=13, flight_trace=True)
    sharded = run_sharded(cfg, 4, exec_mode="inline")
    events = sharded.flight["events"]
    assert events
    keys = [(e["t"], e["origin"]) for e in events]
    assert keys == sorted(keys)
    # More than one shard's uid block contributed.
    assert len({e["origin"] >> 48 for e in events}) > 1
    _assert_conserved(sharded.flight)


def test_sharded_conservation_10k(monkeypatch):
    """The tentpole scale pin: 10 000 nodes, 4 shards (process
    workers), ledger closed. MANETSIM_FULL=1 extends to all five
    protocols (minutes-long; one protocol otherwise)."""
    import os

    monkeypatch.setenv("MANETSIM_SHARD_STRICT", "1")
    protocols = PROTOCOLS if os.environ.get("MANETSIM_FULL") else ["aodv"]
    for protocol in protocols:
        cfg = _island_cfg(
            protocol, n_nodes=10_000, seed=11,
            duration=2.0, n_connections=40,
            traffic_start_window=(0.0, 1.0),
        )
        summary = run_scenario(cfg, shards=4)
        _assert_conserved(summary.flight)
        assert summary.flight["offered"] == summary.data_sent, protocol


def test_flight_enters_the_cache_key():
    # Recorder settings are part of the config's canonical form, so a
    # flight-on sweep never collides with a plain one in the cache.
    from repro.scenario import config_cache_key

    base = ScenarioConfig(seed=7, **SMALL)
    assert config_cache_key(base) != config_cache_key(
        base.with_(flight=True)
    )
    assert config_cache_key(base.with_(flight=True)) != config_cache_key(
        base.with_(flight=True, flight_trace=True)
    )


def test_disabled_flight_installs_no_hooks(monkeypatch):
    from repro.scenario.build import build_scenario

    monkeypatch.delenv("MANETSIM_FLIGHT", raising=False)
    scenario = build_scenario(ScenarioConfig(seed=7, **SMALL))
    assert scenario.sim.flight is None
    for node in scenario.network.nodes:
        assert node.routing._flight is None
        assert node.mac._flight is None
        assert node.mac.ifq.flight is None


def test_summary_flight_field_excluded_from_equality():
    s = run_scenario(ScenarioConfig(seed=7, flight=True, **SMALL))
    stripped = dataclasses.replace(s, flight=None)
    assert stripped == s
