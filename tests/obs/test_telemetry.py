"""Telemetry recorder: schema, sampling cadence, ring bound, export."""

import math

import pytest

from repro.obs.telemetry import (
    TELEMETRY_SCHEMA,
    TELEMETRY_SCHEMA_VERSION,
    TelemetryRecorder,
    load_telemetry_jsonl,
    validate_sample,
)
from repro.scenario.build import build_scenario
from repro.scenario.config import ScenarioConfig

SMALL = dict(
    protocol="aodv",
    n_nodes=8,
    field_size=(300.0, 300.0),
    duration=12.0,
    n_connections=3,
    rate=2.0,
    packet_size=64,
    traffic_start_window=(0.0, 2.0),
    seed=7,
)


def _scenario(**over):
    return build_scenario(ScenarioConfig(**{**SMALL, **over}))


def test_config_wires_recorder_only_when_enabled():
    off = _scenario()
    assert off.telemetry is None
    on = _scenario(telemetry_interval=2.0)
    assert on.telemetry is not None
    assert on.telemetry.interval == 2.0


def test_samples_match_schema_and_cadence():
    scenario = _scenario(telemetry_interval=2.0)
    scenario.run()
    samples = list(scenario.telemetry.samples)
    # duration 12 at interval 2 -> probes at t=2,4,...,12.
    assert len(samples) == 6
    for s in samples:
        validate_sample(s)
    ts = [s["t"] for s in samples]
    assert ts == sorted(ts)
    assert ts[0] == pytest.approx(2.0)


def test_samples_observe_live_state():
    scenario = _scenario(telemetry_interval=2.0)
    scenario.run()
    samples = list(scenario.telemetry.samples)
    # Mid-run the network has routed traffic: state shows up.
    assert any(s["route_entries_total"] > 0 for s in samples)
    assert any(s["events_scheduled"] > 0 for s in samples)
    assert all(s["energy_j"] >= 0.0 for s in samples)
    last = samples[-1]
    # events_scheduled is monotone.
    sched = [s["events_scheduled"] for s in samples]
    assert sched == sorted(sched)
    # Perf deltas are per-interval, not cumulative: their sum can't
    # exceed the final counter values.
    total_sched = sum(s["perf"].get("events_pooled", 0) for s in samples)
    assert total_sched <= scenario.sim.perf.events_pooled
    assert last["nodes_faulted"] == 0


def test_ring_buffer_bounds_samples():
    scenario = _scenario()
    rec = TelemetryRecorder(
        scenario.sim, scenario.network, interval=1.0, capacity=3
    )
    for _ in range(5):
        rec.sample()
    assert len(rec.samples) == 3
    assert rec.dropped == 2


def test_invalid_intervals_rejected():
    scenario = _scenario()
    with pytest.raises(ValueError):
        TelemetryRecorder(scenario.sim, scenario.network, interval=0.0)
    with pytest.raises(ValueError):
        TelemetryRecorder(
            scenario.sim, scenario.network, interval=1.0, capacity=0
        )
    with pytest.raises(Exception):
        ScenarioConfig(**{**SMALL, "telemetry_interval": -1.0})


def test_validate_sample_rejects_drift():
    scenario = _scenario(telemetry_interval=4.0)
    scenario.run()
    sample = dict(scenario.telemetry.samples[0])
    sample["bogus"] = 1
    with pytest.raises(ValueError):
        validate_sample(sample)
    sample = dict(scenario.telemetry.samples[0])
    del sample["energy_j"]
    with pytest.raises(ValueError):
        validate_sample(sample)
    sample = dict(scenario.telemetry.samples[0])
    sample["ifq_depth_total"] = "lots"
    with pytest.raises(ValueError):
        validate_sample(sample)


def test_jsonl_roundtrip(tmp_path):
    scenario = _scenario(telemetry_interval=3.0)
    scenario.run()
    out = tmp_path / "tele.jsonl"
    n = scenario.telemetry.write_jsonl(out)
    assert n == len(scenario.telemetry.samples)
    loaded = load_telemetry_jsonl(out)
    assert loaded == list(scenario.telemetry.samples)


class TestSchemaV2:
    def test_header_line_declares_version(self, tmp_path):
        scenario = _scenario(telemetry_interval=3.0)
        scenario.run()
        out = tmp_path / "tele.jsonl"
        scenario.telemetry.write_jsonl(out)
        import json

        first = json.loads(out.read_text().splitlines()[0])
        assert first == {"telemetry_schema": TELEMETRY_SCHEMA_VERSION}
        assert TELEMETRY_SCHEMA_VERSION == 2

    def test_samples_carry_drops_total(self):
        assert TELEMETRY_SCHEMA["drops_total"] is int
        scenario = _scenario(telemetry_interval=2.0)
        scenario.run()
        totals = [s["drops_total"] for s in scenario.telemetry.samples]
        # Cumulative pressure counter: monotone, never negative.
        assert all(t >= 0 for t in totals)
        assert totals == sorted(totals)

    def test_v1_files_migrate_on_load(self, tmp_path):
        # A v1 file has no header line and no drops_total field; the
        # loader backfills drops_total = 0 so old captures stay usable.
        import json

        scenario = _scenario(telemetry_interval=4.0)
        scenario.run()
        v1 = tmp_path / "v1.jsonl"
        with open(v1, "w") as fh:
            for s in scenario.telemetry.samples:
                old = {k: v for k, v in s.items() if k != "drops_total"}
                fh.write(json.dumps(old) + "\n")
        loaded = load_telemetry_jsonl(v1)
        assert len(loaded) == len(scenario.telemetry.samples)
        assert all(s["drops_total"] == 0 for s in loaded)
        for s in loaded:
            validate_sample(s)

    def test_newer_writers_tolerated(self, tmp_path):
        # A hypothetical v3 writer adds fields this reader has never
        # heard of; they are dropped, not fatal (forward tolerance).
        import json

        scenario = _scenario(telemetry_interval=4.0)
        scenario.run()
        v3 = tmp_path / "v3.jsonl"
        with open(v3, "w") as fh:
            fh.write(json.dumps({"telemetry_schema": 3}) + "\n")
            for s in scenario.telemetry.samples:
                fh.write(json.dumps({**s, "novel_probe": 1.5}) + "\n")
        loaded = load_telemetry_jsonl(v3)
        assert loaded == list(scenario.telemetry.samples)
        assert all("novel_probe" not in s for s in loaded)


def test_csv_export_flattens_perf(tmp_path):
    scenario = _scenario(telemetry_interval=3.0)
    scenario.run()
    out = tmp_path / "tele.csv"
    scenario.telemetry.write_csv(out)
    header = out.read_text().splitlines()[0].split(",")
    plain = [k for k in TELEMETRY_SCHEMA if k != "perf"]
    for key in plain:
        assert key in header
    assert any(col.startswith("perf_") for col in header)


def test_telemetry_counter_lands_in_summary_perf():
    scenario = _scenario(telemetry_interval=2.0)
    summary = scenario.run()
    assert summary.perf["telemetry_samples"] == 6


def test_energy_probe_uses_airtime(tmp_path):
    scenario = _scenario(telemetry_interval=2.0)
    scenario.run()
    energies = [s["energy_j"] for s in scenario.telemetry.samples]
    assert all(math.isfinite(e) for e in energies)
    # Cumulative by construction.
    assert energies == sorted(energies)
