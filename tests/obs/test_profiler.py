"""Span profiler: nesting, self-time accounting, layer classification."""

import pytest

from repro.core.simulator import Simulator
from repro.obs.profiler import LAYERS, Profiler, profile_layer_seconds


def test_span_nesting_builds_paths():
    prof = Profiler()
    with prof.span("outer"):
        with prof.span("inner"):
            pass
        with prof.span("inner"):
            pass
    stats = prof.as_dict()
    assert set(stats) == {"outer", "outer/inner"}
    assert stats["outer"]["calls"] == 1
    assert stats["outer/inner"]["calls"] == 2


def test_self_time_excludes_children():
    prof = Profiler()
    with prof.span("outer"):
        with prof.span("inner"):
            pass
    stats = prof.as_dict()
    outer, inner = stats["outer"], stats["outer/inner"]
    assert outer["wall_s"] >= inner["wall_s"]
    assert outer["self_s"] == pytest.approx(
        outer["wall_s"] - inner["wall_s"], abs=1e-9
    )
    assert inner["self_s"] == pytest.approx(inner["wall_s"], abs=1e-12)


def test_end_without_begin_raises():
    prof = Profiler()
    with pytest.raises(IndexError):
        prof.end()


def test_layer_of_classifies_by_module():
    prof = Profiler()

    def probe():
        pass

    probe.__module__ = "repro.routing.aodv"
    assert prof.layer_of(probe) == "routing"
    probe2 = lambda: None  # noqa: E731
    probe2.__module__ = "somewhere.else"
    assert prof.layer_of(probe2) == "other"
    assert "routing" in LAYERS and "other" in LAYERS


def test_layer_of_memoizes_bound_methods():
    prof = Profiler()

    class Agent:
        def step(self):
            pass

    Agent.__module__ = "repro.mac.dcf"
    Agent.step.__module__ = "repro.mac.dcf"
    a, b = Agent(), Agent()
    assert prof.layer_of(a.step) == "mac"
    # Two bound methods share one underlying function -> one cache entry.
    assert prof.layer_of(b.step) == "mac"
    assert len(prof._layer_cache) == 1


def test_simulator_profiled_loop_records_spans():
    sim = Simulator(seed=1)
    sim.profiler = Profiler()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    sim.run(until=5.0)
    assert fired == ["a", "b"]
    stats = sim.profiler.as_dict()
    assert "event-loop" in stats
    assert stats["event-loop"]["calls"] == 1
    # list.append has no repro module -> classified "other".
    assert stats["event-loop/other"]["calls"] == 2


def test_simulator_without_profiler_installs_nothing():
    sim = Simulator(seed=1)
    assert sim.profiler is None
    sim.schedule(1.0, lambda: None)
    sim.run(until=2.0)
    assert sim.profiler is None


def test_profile_layer_seconds_groups_event_loop_children():
    profile = {
        "event-loop": {"calls": 1, "wall_s": 5.0, "self_s": 1.0},
        "event-loop/mac": {"calls": 10, "wall_s": 3.0, "self_s": 2.0},
        "event-loop/mac/channel.fanout": {
            "calls": 4,
            "wall_s": 1.0,
            "self_s": 1.0,
        },
        "event-loop/routing": {"calls": 2, "wall_s": 1.0, "self_s": 1.0},
    }
    layers = profile_layer_seconds(profile)
    # Sub-spans under a layer fold into that layer's bucket (mac self
    # 2.0 + fanout self 1.0); the loop's own self time keeps its name.
    assert layers["mac"] == pytest.approx(3.0)
    assert layers["routing"] == pytest.approx(1.0)
    assert layers["event-loop"] == pytest.approx(1.0)


def test_clear_resets_everything():
    prof = Profiler()
    with prof.span("x"):
        pass
    prof.clear()
    assert prof.as_dict() == {}
