"""Scenario config validation, building, determinism, sweeps."""

import pytest

from repro.core import ConfigurationError
from repro.scenario import (
    ScenarioConfig,
    build_scenario,
    run_replications,
    run_scenario,
    run_sweep,
    sweep_configs,
)

SMALL = dict(
    n_nodes=10,
    field_size=(500.0, 300.0),
    duration=30.0,
    n_connections=3,
    traffic_start_window=(0.0, 5.0),
)


class TestConfig:
    def test_defaults_are_paper_base(self):
        cfg = ScenarioConfig()
        assert cfg.n_nodes == 50
        assert cfg.field_size == (1500.0, 300.0)
        assert cfg.max_speed == 20.0
        assert cfg.rate == 4.0
        assert cfg.duration == 900.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(protocol="ospf")
        with pytest.raises(ConfigurationError):
            ScenarioConfig(mobility="teleport")
        with pytest.raises(ConfigurationError):
            ScenarioConfig(propagation="magic")
        with pytest.raises(ConfigurationError):
            ScenarioConfig(mac="tdma")
        with pytest.raises(ConfigurationError):
            ScenarioConfig(n_nodes=1)
        with pytest.raises(ConfigurationError):
            ScenarioConfig(duration=0)
        with pytest.raises(ConfigurationError):
            ScenarioConfig(pause_time=-1)

    def test_with_creates_modified_copy(self):
        a = ScenarioConfig()
        b = a.with_(protocol="dsr", pause_time=30.0)
        assert b.protocol == "dsr" and b.pause_time == 30.0
        assert a.protocol == "aodv"

    def test_run_seed_differs_by_replication(self):
        a = ScenarioConfig(seed=1, replication=0)
        b = ScenarioConfig(seed=1, replication=1)
        assert a.run_seed != b.run_seed


class TestBuild:
    @pytest.mark.parametrize("protocol", ["dsdv", "dsr", "aodv", "paodv", "cbrp", "olsr", "flooding", "oracle"])
    def test_every_protocol_builds_and_runs(self, protocol):
        cfg = ScenarioConfig(protocol=protocol, seed=2, **SMALL)
        s = run_scenario(cfg)
        assert s.protocol == protocol
        assert s.data_sent > 0

    @pytest.mark.parametrize("mobility", ["waypoint", "walk", "direction", "gauss_markov", "manhattan", "static"])
    def test_every_mobility_builds(self, mobility):
        cfg = ScenarioConfig(mobility=mobility, seed=3, **SMALL)
        s = run_scenario(cfg)
        assert s.data_sent > 0

    @pytest.mark.parametrize("propagation", ["tworay", "freespace", "unitdisk", "logdistance"])
    def test_every_propagation_builds(self, propagation):
        cfg = ScenarioConfig(propagation=propagation, seed=4, **SMALL)
        s = run_scenario(cfg)
        assert s.data_sent > 0

    def test_ideal_mac_builds(self):
        cfg = ScenarioConfig(mac="ideal", protocol="olsr", seed=5, **SMALL)
        s = run_scenario(cfg)
        assert s.data_sent > 0

    def test_onoff_traffic_builds(self):
        cfg = ScenarioConfig(traffic_model="onoff", seed=6, **SMALL)
        s = run_scenario(cfg)
        assert s.data_sent > 0

    def test_dsr_mac_is_promiscuous(self):
        scen = build_scenario(ScenarioConfig(protocol="dsr", seed=7, **SMALL))
        assert all(n.mac.promiscuous for n in scen.network.nodes)

    def test_aodv_mac_not_promiscuous(self):
        scen = build_scenario(ScenarioConfig(protocol="aodv", seed=7, **SMALL))
        assert all(not n.mac.promiscuous for n in scen.network.nodes)


class TestDeterminism:
    def test_same_config_same_results(self):
        cfg = ScenarioConfig(protocol="aodv", seed=11, **SMALL)
        a = run_scenario(cfg)
        b = run_scenario(cfg)
        assert a.data_sent == b.data_sent
        assert a.data_received == b.data_received
        assert a.avg_delay == b.avg_delay
        assert a.routing_overhead_packets == b.routing_overhead_packets

    def test_replications_differ(self):
        cfg = ScenarioConfig(protocol="aodv", seed=11, **SMALL)
        rs = run_replications(cfg, 2)
        # Different seeds -> different traffic patterns -> different counts.
        assert (rs[0].data_sent, rs[0].data_received) != (
            rs[1].data_sent,
            rs[1].data_received,
        )


class TestSweep:
    def test_sweep_configs_grid(self):
        base = ScenarioConfig(seed=1, **SMALL)
        jobs = sweep_configs(base, "pause_time", [0.0, 30.0], ["aodv", "dsr"], 2)
        assert len(jobs) == 2 * 2 * 2
        protos = {cfg.protocol for _p, cfg in jobs}
        assert protos == {"aodv", "dsr"}

    def test_run_sweep_inline(self):
        base = ScenarioConfig(seed=1, **SMALL)
        res = run_sweep(
            base, "pause_time", [0.0], ["aodv"], replications=2, processes=1
        )
        assert res.xs == [0.0]
        est = res.estimate("aodv", 0.0, "pdr")
        assert est.n == 2
        assert 0.0 <= est.mean <= 1.0
        assert len(res.series("aodv", "pdr")) == 1

    def test_run_sweep_parallel(self):
        base = ScenarioConfig(seed=1, **SMALL)
        res = run_sweep(
            base, "pause_time", [0.0, 10.0], ["aodv"], replications=1, processes=2
        )
        assert len(res.series("aodv", "pdr")) == 2

    def test_parallel_matches_inline(self):
        base = ScenarioConfig(seed=2, **SMALL)
        inline = run_sweep(base, "pause_time", [0.0], ["dsdv"], 1, processes=1)
        par = run_sweep(base, "pause_time", [0.0], ["dsdv"], 1, processes=2)
        assert inline.estimate("dsdv", 0.0, "pdr").mean == pytest.approx(
            par.estimate("dsdv", 0.0, "pdr").mean
        )
