"""The persistent sweep executor: chunked dispatch + on-disk cache."""

import pytest

from repro.core.trace import Tracer
from repro.scenario import ScenarioConfig, config_cache_key, run_sweep
from repro.scenario.executor import SweepExecutor, _resolve_processes

SMALL = dict(
    n_nodes=6,
    field_size=(400.0, 300.0),
    duration=5.0,
    n_connections=2,
    traffic_start_window=(0.0, 1.0),
)


class TestCacheKey:
    def test_stable_and_sensitive(self):
        a = ScenarioConfig(seed=1, **SMALL)
        assert config_cache_key(a) == config_cache_key(ScenarioConfig(seed=1, **SMALL))
        assert config_cache_key(a) != config_cache_key(a.with_(seed=2))
        assert config_cache_key(a) != config_cache_key(a.with_(replication=1))


class TestDiskCache:
    def test_second_sweep_hits_and_matches(self, tmp_path):
        base = ScenarioConfig(seed=3, **SMALL)
        kwargs = dict(replications=1, processes=1, cache=True,
                      cache_dir=str(tmp_path))
        first = run_sweep(base, "pause_time", [0.0, 5.0], ["aodv"], **kwargs)
        assert (first.cache_hits, first.cache_misses) == (0, 2)
        second = run_sweep(base, "pause_time", [0.0, 5.0], ["aodv"], **kwargs)
        assert (second.cache_hits, second.cache_misses) == (2, 0)
        # Cached and fresh summaries are identical, down to flow delays.
        for key in first.raw:
            for a, b in zip(first.raw[key], second.raw[key]):
                assert a == b
                for fid, flow in a.flows.items():
                    assert flow.delays == b.flows[fid].delays

    def test_torn_entry_recomputed(self, tmp_path):
        base = ScenarioConfig(seed=4, **SMALL)
        kwargs = dict(replications=1, processes=1, cache=True,
                      cache_dir=str(tmp_path))
        first = run_sweep(base, "pause_time", [0.0], ["aodv"], **kwargs)
        assert first.cache_misses == 1
        (entry,) = (tmp_path / "sweep").rglob("*.pkl")
        entry.write_bytes(b"not a pickle")
        again = run_sweep(base, "pause_time", [0.0], ["aodv"], **kwargs)
        assert (again.cache_hits, again.cache_misses) == (0, 1)
        assert again.raw == first.raw

    def test_env_disables_cache(self, tmp_path, monkeypatch):
        # conftest sets MANETSIM_NO_SWEEP_CACHE=1; cache=None follows it.
        base = ScenarioConfig(seed=5, **SMALL)
        kwargs = dict(replications=1, processes=1, cache=None,
                      cache_dir=str(tmp_path))
        run_sweep(base, "pause_time", [0.0], ["aodv"], **kwargs)
        res = run_sweep(base, "pause_time", [0.0], ["aodv"], **kwargs)
        assert res.cache_hits == 0
        assert not (tmp_path / "sweep").exists()


class TestDispatch:
    def test_processes_env_override(self, monkeypatch):
        monkeypatch.setenv("MANETSIM_PROCESSES", "3")
        assert _resolve_processes(None) == 3
        assert SweepExecutor().processes == 3
        assert _resolve_processes(2) == 2  # explicit arg wins

    def test_invalid_processes_rejected(self):
        with pytest.raises(ValueError):
            _resolve_processes(0)

    def test_serial_dispatch_is_logged(self, monkeypatch):
        # Stub the simulation so this exercises pure dispatch mechanics.
        monkeypatch.setattr(
            "repro.scenario.executor.run_scenario", lambda cfg: cfg.seed
        )
        tracer = Tracer({"sweep"})
        ex = SweepExecutor(processes=1, use_cache=False, tracer=tracer)
        configs = [ScenarioConfig(seed=s, **SMALL) for s in range(1, 10)]
        out = ex.run(configs)
        assert out == list(range(1, 10))  # input order preserved
        kinds = [rec[2] for rec in tracer.filter("sweep")]
        assert "dispatch" in kinds
        assert "serial" in kinds  # processes=1 is explicit, never silent
        assert ex.last_workers == 1
        assert ex.last_chunksize == max(1, len(configs) // 4)

    def test_pool_persists_across_sweeps(self):
        ex = SweepExecutor(processes=2, use_cache=False)
        try:
            configs = [ScenarioConfig(seed=s, **SMALL) for s in (1, 2)]
            ex.run(configs)
            pool = ex._pool
            assert pool is not None
            ex.run(configs)
            assert ex._pool is pool  # same workers, no refork
        finally:
            ex.close()
