"""Config/result persistence."""

import csv
import os

import pytest

from repro.core import ConfigurationError
from repro.scenario import ScenarioConfig, run_replications, run_sweep
from repro.scenario.io import (
    config_from_dict,
    config_to_dict,
    load_config,
    save_config,
    summaries_to_csv,
    sweep_to_csv,
)

SMALL = dict(
    n_nodes=8, field_size=(500.0, 300.0), duration=15.0,
    n_connections=2, traffic_start_window=(0.0, 3.0),
)


class TestConfigRoundtrip:
    def test_dict_roundtrip_identity(self):
        cfg = ScenarioConfig(protocol="dsr", pause_time=30.0, trace=("route",))
        assert config_from_dict(config_to_dict(cfg)) == cfg

    def test_file_roundtrip(self, tmp_path):
        cfg = ScenarioConfig(protocol="cbrp", n_nodes=17, seed=99)
        path = tmp_path / "scenario.json"
        save_config(cfg, path)
        assert load_config(path) == cfg

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError):
            config_from_dict({"protocoll": "aodv"})

    def test_loaded_config_reproduces_run(self, tmp_path):
        from repro.scenario import run_scenario

        cfg = ScenarioConfig(protocol="aodv", seed=5, **SMALL)
        path = tmp_path / "c.json"
        save_config(cfg, path)
        a = run_scenario(cfg)
        b = run_scenario(load_config(path))
        assert a.data_received == b.data_received
        assert a.avg_delay == b.avg_delay


class TestCsvExport:
    def test_summaries_csv(self, tmp_path):
        cfg = ScenarioConfig(protocol="aodv", seed=2, **SMALL)
        summaries = run_replications(cfg, 2)
        path = tmp_path / "out.csv"
        summaries_to_csv(summaries, path)
        rows = list(csv.DictReader(open(path)))
        assert len(rows) == 2
        assert rows[0]["protocol"] == "aodv"
        assert float(rows[0]["pdr"]) <= 1.0

    def test_extra_columns(self, tmp_path):
        cfg = ScenarioConfig(protocol="aodv", seed=2, **SMALL)
        summaries = run_replications(cfg, 2)
        path = tmp_path / "out.csv"
        summaries_to_csv(summaries, path, extra={"label": ["a", "b"]})
        rows = list(csv.DictReader(open(path)))
        assert [r["label"] for r in rows] == ["a", "b"]

    def test_extra_length_mismatch(self, tmp_path):
        cfg = ScenarioConfig(protocol="aodv", seed=2, **SMALL)
        summaries = run_replications(cfg, 2)
        with pytest.raises(ConfigurationError):
            summaries_to_csv(summaries, tmp_path / "x.csv", extra={"label": ["a"]})

    def test_sweep_csv(self, tmp_path):
        base = ScenarioConfig(seed=3, **SMALL)
        result = run_sweep(base, "pause_time", [0.0, 10.0], ["aodv"],
                           replications=2, processes=1)
        path = tmp_path / "sweep.csv"
        sweep_to_csv(result, path)
        rows = list(csv.DictReader(open(path)))
        assert len(rows) == 4  # 2 values x 2 replications
        assert {r["pause_time"] for r in rows} == {"0.0", "10.0"}
        assert {r["replication"] for r in rows} == {"0", "1"}

    def test_perf_columns_off_by_default(self, tmp_path):
        cfg = ScenarioConfig(protocol="aodv", seed=2, **SMALL)
        summaries = run_replications(cfg, 1)
        path = tmp_path / "plain.csv"
        summaries_to_csv(summaries, path)
        header = path.read_text().splitlines()[0]
        assert "perf_" not in header
        assert "profile_" not in header

    def test_perf_columns_opt_in(self, tmp_path):
        cfg = ScenarioConfig(protocol="aodv", seed=2, **SMALL)
        summaries = run_replications(cfg, 2)
        path = tmp_path / "perf.csv"
        summaries_to_csv(summaries, path, include_perf=True)
        rows = list(csv.DictReader(open(path)))
        assert "perf_fanout_cache_hits" in rows[0]
        if os.environ.get("MANETSIM_LEGACY_KINEMATICS") != "1":
            # The legacy A/B leg disables the fan-out cache entirely;
            # the column still exists, it just records zero hits.
            assert int(rows[0]["perf_fanout_cache_hits"]) > 0
        # Registry order is preserved in the header.
        header = path.read_text().splitlines()[0].split(",")
        hits = header.index("perf_fanout_cache_hits")
        misses = header.index("perf_fanout_cache_misses")
        assert hits < misses

    def test_profile_columns_appear_for_profiled_runs(self, tmp_path):
        cfg = ScenarioConfig(protocol="aodv", seed=2, profile=True, **SMALL)
        summaries = run_replications(cfg, 1)
        path = tmp_path / "prof.csv"
        summaries_to_csv(summaries, path, include_perf=True)
        header = path.read_text().splitlines()[0].split(",")
        prof_cols = [c for c in header if c.startswith("profile_")]
        assert "profile_event-loop_s" in prof_cols
        rows = list(csv.DictReader(open(path)))
        assert float(rows[0]["profile_event-loop_s"]) > 0.0

    def test_sweep_csv_perf_flag(self, tmp_path):
        base = ScenarioConfig(seed=3, **SMALL)
        result = run_sweep(base, "pause_time", [0.0], ["aodv"],
                           replications=1, processes=1)
        path = tmp_path / "sweep_perf.csv"
        sweep_to_csv(result, path, include_perf=True)
        header = path.read_text().splitlines()[0]
        assert "perf_fanout_cache_hits" in header

    def test_drops_columns_off_by_default(self, tmp_path):
        cfg = ScenarioConfig(protocol="aodv", seed=2, **SMALL)
        summaries = run_replications(cfg, 1)
        path = tmp_path / "plain.csv"
        summaries_to_csv(summaries, path)
        assert "drop_" not in path.read_text().splitlines()[0]

    def test_drops_columns_opt_in(self, tmp_path):
        import dataclasses

        cfg = ScenarioConfig(protocol="aodv", seed=2, **SMALL)
        a, b = run_replications(cfg, 2)
        # Pin a deterministic taxonomy: columns are the sorted union
        # across rows, and rows missing a reason read as zero.
        a = dataclasses.replace(a, drops_by_reason={"no_route": 3})
        b = dataclasses.replace(b, drops_by_reason={"ifq_full": 2})
        path = tmp_path / "drops.csv"
        summaries_to_csv([a, b], path, include_drops=True)
        rows = list(csv.DictReader(open(path)))
        assert [r["drop_no_route"] for r in rows] == ["3", "0"]
        assert [r["drop_ifq_full"] for r in rows] == ["0", "2"]
        header = path.read_text().splitlines()[0].split(",")
        drop_cols = [c for c in header if c.startswith("drop_")]
        assert drop_cols == sorted(drop_cols)

    def test_drops_columns_tolerate_old_pickles(self, tmp_path):
        # Summaries unpickled from a pre-taxonomy cache have no
        # drops_by_reason attribute at all; the exporter treats them
        # as all-zero rather than crashing the whole export.
        class Legacy:
            def __init__(self, summary):
                for col in ("protocol", "duration", "data_sent",
                            "data_received", "pdr", "avg_delay"):
                    setattr(self, col, getattr(summary, col))

            def __getattr__(self, name):
                if name == "drops_by_reason":
                    raise AttributeError(name)
                return 0

        import dataclasses

        cfg = ScenarioConfig(protocol="aodv", seed=2, **SMALL)
        (modern,) = run_replications(cfg, 1)
        modern = dataclasses.replace(
            modern, drops_by_reason={"link_lost": 1}
        )
        path = tmp_path / "mixed.csv"
        summaries_to_csv([modern, Legacy(modern)], path, include_drops=True)
        rows = list(csv.DictReader(open(path)))
        assert [r["drop_link_lost"] for r in rows] == ["1", "0"]

    def test_sweep_csv_drops_flag(self, tmp_path):
        base = ScenarioConfig(seed=3, **SMALL)
        result = run_sweep(base, "pause_time", [0.0], ["aodv"],
                           replications=1, processes=1)
        plain = tmp_path / "sweep_plain.csv"
        sweep_to_csv(result, plain)
        assert "drop_" not in plain.read_text().splitlines()[0]
        opted = tmp_path / "sweep_drops.csv"
        sweep_to_csv(result, opted, include_drops=True)
        rows = list(csv.DictReader(open(opted)))
        # Columns appear iff some row recorded that reason; every cell
        # is a parseable count either way.
        for row in rows:
            for col, value in row.items():
                if col.startswith("drop_"):
                    assert int(value) >= 0
