"""Determinism guarantees of the vectorized hot-path engine.

The batch kinematics / fan-out cache machinery is an *optimization*,
never a model change: with the same seed, the vectorized engine and the
legacy per-node paths (``MANETSIM_LEGACY_KINEMATICS=1``) must produce
bit-identical metrics, and the batch ``positions(t)`` evaluation must
match every mobility model's scalar ``position(t)``.

The same discipline covers the routing control-plane fast path
(``MANETSIM_LEGACY_ROUTING=1`` selects the reference implementations)
and the batched PHY arrival engine (``MANETSIM_LEGACY_PHY=1`` selects
the per-pair reference reception path).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rng import RngStreams
from repro.mobility import (
    Field,
    GaussMarkov,
    ManhattanGrid,
    MobilityManager,
    RandomDirection,
    RandomWalk,
    RandomWaypoint,
    StaticPosition,
    make_groups,
)
from repro.scenario import ScenarioConfig, run_scenario

SMALL = dict(
    n_nodes=10,
    field_size=(600.0, 300.0),
    duration=15.0,
    n_connections=3,
    traffic_start_window=(0.0, 2.0),
)

MODEL_KINDS = [
    "waypoint",
    "walk",
    "direction",
    "gauss_markov",
    "manhattan",
    "rpgm",
    "static",
]


@pytest.mark.parametrize("protocol", ["aodv", "dsr"])
def test_vectorized_matches_legacy_end_to_end(protocol, monkeypatch):
    """Full-scenario A/B: vectorized vs legacy engine, same seed."""
    cfg = ScenarioConfig(protocol=protocol, seed=7, **SMALL)

    monkeypatch.delenv("MANETSIM_LEGACY_KINEMATICS", raising=False)
    fast = run_scenario(cfg)
    monkeypatch.setenv("MANETSIM_LEGACY_KINEMATICS", "1")
    legacy = run_scenario(cfg)

    # The knob actually flipped the engine (perf counters are excluded
    # from summary equality, so this distinguishes the two runs).
    assert fast.perf["batch_position_evals"] > 0
    assert legacy.perf["batch_position_evals"] == 0
    assert fast.perf["fanout_cache_hits"] > 0
    assert legacy.perf["fanout_cache_hits"] == 0

    # Bit-identical results: whole summary and every per-flow delay.
    assert fast == legacy
    assert set(fast.flows) == set(legacy.flows)
    for fid, flow in fast.flows.items():
        assert flow.delays == legacy.flows[fid].delays


@pytest.mark.parametrize("protocol", ["aodv", "dsr", "dsdv", "cbrp"])
def test_routing_fast_path_matches_legacy(protocol, monkeypatch):
    """Full-scenario A/B: routing fast path vs legacy, same seed.

    The control-plane fast path (incremental DSDV dumps, LinkCache
    memoization, seen-set dedup, packet pooling) must be invisible in
    the results: only perf counters may differ between the two runs.
    """
    cfg = ScenarioConfig(protocol=protocol, seed=7, **SMALL)

    monkeypatch.delenv("MANETSIM_LEGACY_ROUTING", raising=False)
    fast = run_scenario(cfg)
    monkeypatch.setenv("MANETSIM_LEGACY_ROUTING", "1")
    legacy = run_scenario(cfg)

    # The knob actually flipped the path: the pool only reclaims
    # broadcast control packets on the fast path.
    assert fast.perf["packets_pooled"] > 0
    assert legacy.perf["packets_pooled"] == 0

    # Bit-identical results: whole summary and every per-flow delay.
    assert fast == legacy
    assert set(fast.flows) == set(legacy.flows)
    for fid, flow in fast.flows.items():
        assert flow.delays == legacy.flows[fid].delays


@pytest.mark.parametrize("protocol", ["aodv", "dsr", "dsdv", "cbrp", "paodv"])
def test_batched_phy_matches_legacy(protocol, monkeypatch):
    """Full-scenario A/B: batched arrival engine vs per-pair, same seed.

    The batched engine resolves a transmission's whole fan-out in one
    vector pass and defers interference bookkeeping to frame end; the
    legacy path walks ``begin_arrival``/``end_arrival`` per receiver.
    Identical physics, different evaluation order — results must be
    bit-identical for every protocol.
    """
    cfg = ScenarioConfig(protocol=protocol, seed=7, **SMALL)

    monkeypatch.delenv("MANETSIM_LEGACY_PHY", raising=False)
    fast = run_scenario(cfg)
    monkeypatch.setenv("MANETSIM_LEGACY_PHY", "1")
    legacy = run_scenario(cfg)

    # The knob actually flipped the engine.
    assert fast.perf["phy_batch_arrivals"] > 0
    assert fast.perf["phy_legacy_arrivals"] == 0
    assert legacy.perf["phy_batch_arrivals"] == 0
    assert legacy.perf["phy_legacy_arrivals"] > 0

    # Bit-identical results: whole summary and every per-flow delay.
    assert fast == legacy
    assert set(fast.flows) == set(legacy.flows)
    for fid, flow in fast.flows.items():
        assert flow.delays == legacy.flows[fid].delays


@pytest.mark.parametrize("protocol", ["aodv", "dsr", "dsdv", "cbrp", "paodv"])
def test_dcf_arena_matches_legacy(protocol, monkeypatch):
    """Full-scenario A/B: contention arena vs per-node DCF, same seed.

    The arena moves DCF's waiting-state machine onto shared arrays, a
    coalescing timer wheel, and batched medium-edge verdicts; the
    legacy path (``MANETSIM_LEGACY_DCF=1``) keeps per-node timers and
    ``medium_changed`` callbacks. Identical protocol, different
    dispatch machinery — results must be bit-identical everywhere.
    """
    cfg = ScenarioConfig(protocol=protocol, seed=7, **SMALL)

    # The arena rides the batched PHY engine, so both sides of this
    # A/B must run it even on the all-legacy CI leg.
    monkeypatch.delenv("MANETSIM_LEGACY_PHY", raising=False)
    monkeypatch.delenv("MANETSIM_LEGACY_DCF", raising=False)
    fast = run_scenario(cfg)
    monkeypatch.setenv("MANETSIM_LEGACY_DCF", "1")
    legacy = run_scenario(cfg)

    # The knob actually flipped the engine: only the arena routes DCF
    # timers through the shared wheel.
    assert fast.perf["mac_timer_events"] > 0
    assert legacy.perf["mac_timer_events"] == 0

    # Bit-identical results: whole summary and every per-flow delay.
    assert fast == legacy
    assert set(fast.flows) == set(legacy.flows)
    for fid, flow in fast.flows.items():
        assert flow.delays == legacy.flows[fid].delays


def test_dcf_arena_vector_paths_match_legacy(monkeypatch):
    """The arena's NumPy paths (normally taken only above the scalar
    cutoff) must be bit-identical too: force the cutoff to zero so a
    10-node run exercises the vectorized busy-edge and end-of-frame
    passes on every fan-out."""
    from repro.mac import arena as arena_mod
    from repro.mac.arena import ContentionArena

    cfg = ScenarioConfig(protocol="aodv", seed=7, **SMALL)

    monkeypatch.delenv("MANETSIM_LEGACY_PHY", raising=False)
    monkeypatch.setenv("MANETSIM_LEGACY_DCF", "1")
    legacy = run_scenario(cfg)
    monkeypatch.delenv("MANETSIM_LEGACY_DCF", raising=False)
    monkeypatch.setattr(arena_mod, "_SCALAR_CUTOFF", 0)
    monkeypatch.setattr(ContentionArena, "scalar_cutoff", 0)
    vector = run_scenario(cfg)

    assert vector.perf["mac_timer_events"] > 0
    assert vector == legacy
    for fid, flow in vector.flows.items():
        assert flow.delays == legacy.flows[fid].delays


class TestFaultDeterminism:
    """Fault injection must not disturb the determinism contract."""

    def test_faulted_dcf_arena_matches_legacy(self, monkeypatch):
        # Node crashes tear radios out of the air mid-reservation and
        # the fault hook filters fan-outs — the arena's wheel timers
        # and shared arrays must shrug all of it off bit-identically.
        from repro.faults.plan import FaultPlanConfig

        cfg = ScenarioConfig(
            seed=11,
            faults=FaultPlanConfig(churn_rate=0.04, mean_downtime=3.0,
                                   link_loss=0.08),
            **SMALL,
        )
        monkeypatch.delenv("MANETSIM_LEGACY_PHY", raising=False)
        monkeypatch.delenv("MANETSIM_LEGACY_DCF", raising=False)
        fast = run_scenario(cfg)
        monkeypatch.setenv("MANETSIM_LEGACY_DCF", "1")
        legacy = run_scenario(cfg)

        assert fast.fault_crashes > 0
        assert fast.perf["mac_timer_events"] > 0
        assert legacy.perf["mac_timer_events"] == 0
        assert fast == legacy
        for fid, flow in fast.flows.items():
            assert flow.delays == legacy.flows[fid].delays

    def test_faulted_batched_phy_matches_legacy(self, monkeypatch):
        # The fault hook filters a fan-out *after* the geometry memo,
        # in deterministic target order, on both engines — so a faulted
        # run must stay bit-identical across the PHY A/B knob too.
        from repro.faults.plan import FaultPlanConfig

        cfg = ScenarioConfig(
            seed=11,
            faults=FaultPlanConfig(churn_rate=0.04, mean_downtime=3.0,
                                   link_loss=0.08),
            **SMALL,
        )
        monkeypatch.delenv("MANETSIM_LEGACY_PHY", raising=False)
        fast = run_scenario(cfg)
        monkeypatch.setenv("MANETSIM_LEGACY_PHY", "1")
        legacy = run_scenario(cfg)

        assert fast.fault_crashes > 0
        assert fast.perf["phy_batch_arrivals"] > 0
        assert legacy.perf["phy_batch_arrivals"] == 0
        assert fast == legacy
        for fid, flow in fast.flows.items():
            assert flow.delays == legacy.flows[fid].delays

    def test_no_fault_config_is_bit_identical_with_zero_fault_fields(self):
        cfg = ScenarioConfig(seed=7, **SMALL)
        a = run_scenario(cfg)
        b = run_scenario(cfg)
        assert a == b
        assert (a.fault_crashes, a.fault_packets_lost) == (0, 0)
        assert (a.fault_downtime, a.fault_recovery_latency) == (0.0, 0.0)

    def test_seeded_churn_identical_across_runs(self):
        from repro.faults.plan import FaultPlanConfig

        cfg = ScenarioConfig(
            seed=7,
            faults=FaultPlanConfig(churn_rate=0.03, mean_downtime=4.0,
                                   link_loss=0.05),
            **SMALL,
        )
        a = run_scenario(cfg)
        b = run_scenario(cfg)
        assert a.fault_crashes > 0
        assert a == b
        for fid, flow in a.flows.items():
            assert flow.delays == b.flows[fid].delays

    def test_seeded_churn_identical_across_worker_counts(self, tmp_path):
        # A faulted sweep must not depend on how it is dispatched:
        # inline (1 process) and pooled (2 processes) executions of the
        # same configs produce identical summaries.
        from repro.faults.plan import FaultPlanConfig
        from repro.scenario import SweepExecutor

        plan = FaultPlanConfig(churn_rate=0.03, mean_downtime=4.0)
        configs = [
            ScenarioConfig(seed=s, faults=plan, **SMALL) for s in (3, 4)
        ]
        serial = SweepExecutor(processes=1, use_cache=False)
        pooled = SweepExecutor(processes=2, use_cache=False)
        try:
            inline = serial.run(configs)
            fanned = pooled.run(configs)
        finally:
            serial.close()
            pooled.close()
        assert inline == fanned
        for a, b in zip(inline, fanned):
            for fid, flow in a.flows.items():
                assert flow.delays == b.flows[fid].delays

    def test_fault_fields_survive_the_sweep_cache(self, tmp_path):
        from repro.faults.plan import FaultPlanConfig
        from repro.scenario import run_sweep

        base = ScenarioConfig(
            seed=9,
            faults=FaultPlanConfig(churn_rate=0.05, mean_downtime=3.0),
            **SMALL,
        )
        kwargs = dict(replications=1, processes=1, cache=True,
                      cache_dir=str(tmp_path))
        first = run_sweep(base, "pause_time", [0.0], ["aodv"], **kwargs)
        second = run_sweep(base, "pause_time", [0.0], ["aodv"], **kwargs)
        assert second.cache_hits == 1
        (a,), (b,) = first.raw.values(), second.raw.values()
        assert a == b
        assert a[0].fault_crashes > 0

    def test_plan_changes_the_cache_key(self):
        from repro.faults.plan import FaultPlanConfig
        from repro.scenario import config_cache_key

        base = ScenarioConfig(seed=7, **SMALL)
        faulted = base.with_(faults=FaultPlanConfig(link_loss=0.1))
        assert config_cache_key(base) != config_cache_key(faulted)


class TestObservabilityDeterminism:
    """Profiling and telemetry are read-only: results never change.

    The obs layer's contract is pay-for-what-you-use *and*
    see-but-don't-touch — a seeded run is bit-identical with spans and
    probes on or off, and a disabled config installs no hooks at all.
    """

    def test_disabled_obs_installs_no_hooks(self):
        from repro.scenario.build import build_scenario

        scenario = build_scenario(ScenarioConfig(seed=7, **SMALL))
        assert scenario.sim.profiler is None
        assert scenario.telemetry is None
        assert scenario.network.mobility.profiler is None
        assert scenario.network.channel.profiler is None

    def test_profiling_is_bit_identical(self):
        cfg = ScenarioConfig(seed=7, **SMALL)
        plain = run_scenario(cfg)
        profiled = run_scenario(cfg.with_(profile=True))
        # The profiler actually ran (spans recorded) ...
        assert profiled.profile and "event-loop" in profiled.profile
        assert not plain.profile
        # ... and never touched the simulation (profile/perf are
        # excluded from summary equality, so this is the full metric
        # surface plus every per-flow delay).
        assert plain == profiled
        for fid, flow in plain.flows.items():
            assert flow.delays == profiled.flows[fid].delays

    def test_telemetry_is_bit_identical(self):
        cfg = ScenarioConfig(seed=7, **SMALL)
        plain = run_scenario(cfg)
        probed = run_scenario(cfg.with_(telemetry_interval=1.0))
        assert probed.perf["telemetry_samples"] > 0
        assert plain == probed
        for fid, flow in plain.flows.items():
            assert flow.delays == probed.flows[fid].delays

    def test_profile_and_telemetry_together_bit_identical(self):
        cfg = ScenarioConfig(seed=7, **SMALL)
        plain = run_scenario(cfg)
        both = run_scenario(
            cfg.with_(profile=True, telemetry_interval=0.5)
        )
        assert plain == both

    def test_obs_fields_enter_the_cache_key(self):
        # Intentional: obs settings are part of the config's canonical
        # form, so sweeps with different observability never collide in
        # the result cache.
        from repro.scenario import config_cache_key

        base = ScenarioConfig(seed=7, **SMALL)
        assert config_cache_key(base) != config_cache_key(
            base.with_(profile=True)
        )
        assert config_cache_key(base) != config_cache_key(
            base.with_(telemetry_interval=2.0)
        )


@given(
    n_nodes=st.integers(min_value=5, max_value=14),
    seed=st.integers(min_value=0, max_value=2**20),
    protocol=st.sampled_from(["aodv", "dsdv", "dsr"]),
)
@settings(max_examples=10, deadline=None)
def test_batched_phy_property_random_topologies(n_nodes, seed, protocol):
    """Property: batched ≡ legacy PHY on arbitrary small topologies.

    Hypothesis drives node count, seed, and protocol; every example
    must produce bit-identical summaries and per-flow delay lists
    across the engine knob. ``os.environ`` is restored in a finally so
    a failing example cannot leak the legacy knob into later tests.
    """
    import os

    cfg = ScenarioConfig(
        protocol=protocol,
        n_nodes=n_nodes,
        field_size=(500.0, 300.0),
        duration=8.0,
        n_connections=min(3, n_nodes - 1),
        traffic_start_window=(0.0, 2.0),
        seed=seed,
    )
    saved = os.environ.pop("MANETSIM_LEGACY_PHY", None)
    try:
        fast = run_scenario(cfg)
        os.environ["MANETSIM_LEGACY_PHY"] = "1"
        legacy = run_scenario(cfg)
    finally:
        if saved is None:
            os.environ.pop("MANETSIM_LEGACY_PHY", None)
        else:
            os.environ["MANETSIM_LEGACY_PHY"] = saved

    assert fast.perf["phy_batch_arrivals"] > 0
    assert legacy.perf["phy_batch_arrivals"] == 0
    assert fast == legacy
    assert set(fast.flows) == set(legacy.flows)
    for fid, flow in fast.flows.items():
        assert flow.delays == legacy.flows[fid].delays


@given(
    n_nodes=st.integers(min_value=5, max_value=14),
    seed=st.integers(min_value=0, max_value=2**20),
    protocol=st.sampled_from(["aodv", "dsdv", "dsr"]),
)
@settings(max_examples=10, deadline=None)
def test_dcf_arena_property_random_topologies(n_nodes, seed, protocol):
    """Property: arena ≡ legacy DCF on arbitrary small topologies.

    Hypothesis drives node count, seed, and protocol; every example
    must produce bit-identical summaries and per-flow delay lists
    across the contention-engine knob. ``os.environ`` is restored in a
    finally so a failing example cannot leak the knob into later tests.
    """
    import os

    cfg = ScenarioConfig(
        protocol=protocol,
        n_nodes=n_nodes,
        field_size=(500.0, 300.0),
        duration=8.0,
        n_connections=min(3, n_nodes - 1),
        traffic_start_window=(0.0, 2.0),
        seed=seed,
    )
    saved = os.environ.pop("MANETSIM_LEGACY_DCF", None)
    saved_phy = os.environ.pop("MANETSIM_LEGACY_PHY", None)
    try:
        fast = run_scenario(cfg)
        os.environ["MANETSIM_LEGACY_DCF"] = "1"
        legacy = run_scenario(cfg)
    finally:
        if saved is None:
            os.environ.pop("MANETSIM_LEGACY_DCF", None)
        else:
            os.environ["MANETSIM_LEGACY_DCF"] = saved
        if saved_phy is not None:
            os.environ["MANETSIM_LEGACY_PHY"] = saved_phy

    assert fast.perf["mac_timer_events"] > 0
    assert legacy.perf["mac_timer_events"] == 0
    assert fast == legacy
    assert set(fast.flows) == set(legacy.flows)
    for fid, flow in fast.flows.items():
        assert flow.delays == legacy.flows[fid].delays


def _build_models(kind: str, seed: int):
    """A fresh, deterministic model set of one mobility kind."""
    streams = RngStreams(seed)
    field = Field(500.0, 400.0)
    if kind == "rpgm":
        return make_groups(
            field, streams.stream, 6, n_groups=2,
            max_speed=15.0, pause_time=1.0, radius=50.0,
        )
    models = []
    for i in range(5):
        rng = streams.stream(f"m{i}")
        if kind == "waypoint":
            m = RandomWaypoint(field, rng, max_speed=15.0, pause_time=2.0)
        elif kind == "walk":
            m = RandomWalk(field, rng, max_speed=15.0)
        elif kind == "direction":
            m = RandomDirection(field, rng, max_speed=15.0, pause_time=1.0)
        elif kind == "gauss_markov":
            m = GaussMarkov(field, rng, mean_speed=8.0)
        elif kind == "manhattan":
            m = ManhattanGrid(field, rng, max_speed=15.0)
        else:
            m = StaticPosition(*field.random_point(rng))
        models.append(m)
    return models


@pytest.mark.parametrize("kind", MODEL_KINDS)
@given(ts=st.lists(
    st.floats(min_value=0.0, max_value=600.0, allow_nan=False),
    min_size=1, max_size=20,
))
@settings(max_examples=20, deadline=None)
def test_batch_positions_match_scalar(kind, ts):
    """Batch ``positions(t)`` ≡ per-model ``position(t)`` (≤ 1e-12)."""
    # Two identically-seeded model sets: one driven through the batch
    # manager, one queried directly, so RNG draw order stays aligned.
    mgr = MobilityManager(_build_models(kind, 11), batch=True)
    ref = _build_models(kind, 11)
    for t in sorted(ts):
        pos = mgr.positions(t)
        for i, model in enumerate(ref):
            x, y = model.position(t)
            assert abs(pos[i, 0] - x) <= 1e-12
            assert abs(pos[i, 1] - y) <= 1e-12


# --------------------------------------------------------------- sharding
#
# The spatially sharded engine (repro.shard) must be invisible in the
# results: for island partitions (radio-disjoint clusters), any shard
# count produces a bit-identical MetricsSummary, including per-flow
# delay lists. These pins cover all five of the paper's protocols.

#: Paper-density clustered field: 4 radio-disjoint islands.
_SHARD_DENSITY = 50 / (1500.0 * 300.0)


def _island_cfg(protocol, n_nodes, seed, n_clusters=4, **over):
    strip = n_nodes / n_clusters / _SHARD_DENSITY / 300.0
    width = n_clusters * strip + (n_clusters - 1) * 700.0
    merged = dict(
        n_nodes=n_nodes,
        field_size=(width, 300.0),
        mobility="static",
        placement="clusters",
        n_clusters=n_clusters,
        cluster_gap=700.0,
        duration=15.0,
        n_connections=max(4, n_nodes // 10),
        traffic_start_window=(0.0, 4.0),
        seed=seed,
    )
    merged.update(over)
    return ScenarioConfig(protocol=protocol, **merged)


@pytest.mark.parametrize(
    "protocol", ["dsdv", "dsr", "aodv", "paodv", "cbrp"]
)
def test_sharded_matches_single_loop(protocol, monkeypatch):
    """4-shard island run ≡ single loop, all five paper protocols."""
    from repro.shard import run_sharded

    monkeypatch.setenv("MANETSIM_SHARD_STRICT", "1")
    cfg = _island_cfg(protocol, n_nodes=120, seed=13)
    single = run_scenario(cfg, shards=1)
    sharded = run_sharded(cfg, 4, exec_mode="inline")
    assert sharded == single
    assert set(sharded.flows) == set(single.flows)
    for fid, flow in sharded.flows.items():
        assert flow.delays == single.flows[fid].delays


def test_sharded_matches_single_loop_10k(monkeypatch):
    """The tentpole pin: a 10 000-node static field, 4 shards, bit-
    identical to the single event loop (process workers, merged
    records, per-shard uid blocks all exercised at full scale).

    One protocol always runs; MANETSIM_FULL=1 extends the pin to all
    five (DSDV's table broadcasts make the full matrix minutes-long).
    """
    import os

    from repro.shard import run_sharded

    monkeypatch.setenv("MANETSIM_SHARD_STRICT", "1")
    protocols = (
        ["dsdv", "dsr", "aodv", "paodv", "cbrp"]
        if os.environ.get("MANETSIM_FULL")
        else ["aodv"]
    )
    for protocol in protocols:
        cfg = _island_cfg(
            protocol, n_nodes=10_000, seed=11,
            duration=2.0, n_connections=40,
            traffic_start_window=(0.0, 1.0),
        )
        single = run_scenario(cfg, shards=1)
        sharded = run_scenario(cfg, shards=4)
        assert sharded == single, protocol
        for fid, flow in sharded.flows.items():
            assert flow.delays == single.flows[fid].delays


@given(
    n_nodes=st.integers(min_value=24, max_value=48),
    seed=st.integers(min_value=0, max_value=2**20),
    protocol=st.sampled_from(["dsdv", "dsr", "aodv", "paodv", "cbrp"]),
    n_shards=st.sampled_from([2, 4]),
)
@settings(max_examples=8, deadline=None)
def test_sharded_property_random_topologies(n_nodes, seed, protocol, n_shards):
    """Property: shard-count invariance on random clustered topologies.

    Hypothesis drives node count, seed, protocol, and shard count;
    every example must match the single loop bit-for-bit. The env knob
    is restored in a finally so a failing example cannot leak strict
    mode into later tests.
    """
    import os

    from repro.shard import run_sharded

    cfg = _island_cfg(
        protocol, n_nodes=n_nodes, seed=seed,
        duration=8.0, n_connections=3, traffic_start_window=(0.0, 2.0),
    )
    saved = os.environ.get("MANETSIM_SHARD_STRICT")
    os.environ["MANETSIM_SHARD_STRICT"] = "1"
    try:
        single = run_scenario(cfg, shards=1)
        sharded = run_sharded(cfg, n_shards, exec_mode="inline")
    finally:
        if saved is None:
            os.environ.pop("MANETSIM_SHARD_STRICT", None)
        else:
            os.environ["MANETSIM_SHARD_STRICT"] = saved

    assert sharded == single
    for fid, flow in sharded.flows.items():
        assert flow.delays == single.flows[fid].delays
