"""Executor resilience: worker crashes, timeouts, retries, resume.

These tests stub ``repro.scenario.executor.run_scenario`` with cheap
functions so they exercise pure dispatch mechanics. The stub reaches
forked workers because the pool is created *after* the monkeypatch (fork
inherits parent memory), so every test uses a fresh ``SweepExecutor``.
"""

import json
import os
import time

import pytest

from repro.core.errors import ExecutorError
from repro.scenario import FailedRun, ScenarioConfig, SweepExecutor, run_sweep
import repro.scenario.executor as exmod

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="resilience tests require fork workers"
)

SMALL = dict(
    n_nodes=6,
    field_size=(400.0, 300.0),
    duration=5.0,
    n_connections=2,
    traffic_start_window=(0.0, 1.0),
)

#: Sentinel seed: the stub worker kills its own process on this config.
KILLER = 666


def cfgs(*seeds):
    return [ScenarioConfig(seed=s, **SMALL) for s in seeds]


@pytest.fixture
def executor_factory():
    made = []

    def make(**kwargs):
        kwargs.setdefault("use_cache", False)
        ex = SweepExecutor(**kwargs)
        made.append(ex)
        return ex

    yield make
    for ex in made:
        ex.close()


class TestWorkerCrash:
    def test_killed_worker_fails_only_its_point(
        self, monkeypatch, executor_factory
    ):
        def stub(cfg):
            if cfg.seed == KILLER:
                os._exit(13)  # simulate a segfault/OOM-kill
            return cfg.seed

        monkeypatch.setattr(exmod, "run_scenario", stub)
        ex = executor_factory(processes=2, max_retries=0)
        out = ex.run(cfgs(1, 2, KILLER, 3, 4))
        # Only the killer config fails; bystanders all complete.
        assert [out[i] for i in (0, 1, 3, 4)] == [1, 2, 3, 4]
        failed = out[2]
        assert isinstance(failed, FailedRun)
        assert failed.kind == "broken-pool"
        assert failed.config.seed == KILLER
        assert ex.last_failures == [failed]
        # The pool was recycled (rebuilt on demand at the next submit).
        assert ex.pool_restarts >= 1

    def test_pool_keeps_working_after_crash(self, monkeypatch, executor_factory):
        def stub(cfg):
            if cfg.seed == KILLER:
                os._exit(13)
            return cfg.seed

        monkeypatch.setattr(exmod, "run_scenario", stub)
        ex = executor_factory(processes=2, max_retries=0)
        ex.run(cfgs(KILLER, 1))
        # A subsequent batch on the same executor is unaffected.
        assert ex.run(cfgs(5, 6, 7)) == [5, 6, 7]

    def test_transient_crash_retried_to_success(
        self, monkeypatch, executor_factory, tmp_path
    ):
        # The worker dies the first time it sees the config, then
        # succeeds: one retry must absorb a transient kill.
        marker = tmp_path / "crashed-once"

        def stub(cfg):
            if cfg.seed == KILLER and not marker.exists():
                marker.touch()
                os._exit(13)
            return cfg.seed

        monkeypatch.setattr(exmod, "run_scenario", stub)
        ex = executor_factory(processes=2, max_retries=1, retry_backoff=0.01)
        assert ex.run(cfgs(1, KILLER)) == [1, KILLER]


class TestExceptionsAndRetries:
    def test_worker_exception_becomes_failed_run(
        self, monkeypatch, executor_factory
    ):
        def stub(cfg):
            if cfg.seed == 5:
                raise ValueError("bad parameters")
            return cfg.seed

        monkeypatch.setattr(exmod, "run_scenario", stub)
        ex = executor_factory(processes=2, max_retries=0)
        out = ex.run(cfgs(1, 5, 2))
        assert isinstance(out[1], FailedRun)
        assert out[1].kind == "exception"
        assert "bad parameters" in out[1].error
        assert out[1].attempts == 1

    def test_transient_exception_retried(
        self, monkeypatch, executor_factory, tmp_path
    ):
        marker = tmp_path / "raised-once"

        def stub(cfg):
            if cfg.seed == 5 and not marker.exists():
                marker.touch()
                raise RuntimeError("transient")
            return cfg.seed

        monkeypatch.setattr(exmod, "run_scenario", stub)
        ex = executor_factory(processes=2, max_retries=2, retry_backoff=0.01)
        assert ex.run(cfgs(5, 6)) == [5, 6]

    def test_inline_mode_records_exceptions_too(
        self, monkeypatch, executor_factory
    ):
        def stub(cfg):
            if cfg.seed == 5:
                raise RuntimeError("boom")
            return cfg.seed

        monkeypatch.setattr(exmod, "run_scenario", stub)
        ex = executor_factory(processes=1)
        out = ex.run(cfgs(1, 5, 2))
        assert out[0] == 1 and out[2] == 2
        assert isinstance(out[1], FailedRun)
        assert out[1].kind == "exception"


class TestTimeout:
    def test_hung_job_times_out(self, monkeypatch, executor_factory):
        def stub(cfg):
            if cfg.seed == 9:
                time.sleep(60)
            return cfg.seed

        monkeypatch.setattr(exmod, "run_scenario", stub)
        ex = executor_factory(processes=2, job_timeout=0.5, max_retries=0)
        t0 = time.monotonic()
        out = ex.run(cfgs(1, 9, 2))
        assert time.monotonic() - t0 < 30.0  # nowhere near the 60 s hang
        assert out[0] == 1 and out[2] == 2
        assert isinstance(out[1], FailedRun)
        assert out[1].kind == "timeout"

    def test_env_knobs_resolve(self, monkeypatch):
        monkeypatch.setenv("MANETSIM_JOB_TIMEOUT", "12.5")
        monkeypatch.setenv("MANETSIM_JOB_RETRIES", "7")
        ex = SweepExecutor(processes=1, use_cache=False)
        assert ex.job_timeout == 12.5
        assert ex.max_retries == 7

    def test_zero_timeout_means_disabled(self):
        ex = SweepExecutor(processes=1, use_cache=False, job_timeout=0)
        assert ex.job_timeout is None

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            SweepExecutor(processes=1, use_cache=False, max_retries=-1)


class TestJournalAndResume:
    def test_journal_records_every_outcome(
        self, monkeypatch, executor_factory, tmp_path
    ):
        def stub(cfg):
            if cfg.seed == 5:
                raise RuntimeError("boom")
            return cfg.seed

        monkeypatch.setattr(exmod, "run_scenario", stub)
        ex = executor_factory(
            processes=1, use_cache=True, cache_dir=str(tmp_path), max_retries=0
        )
        ex.run(cfgs(1, 5, 2))
        entries = [json.loads(l) for l in open(ex.journal_path)]
        statuses = sorted(e["status"] for e in entries)
        assert statuses == ["failed", "ok", "ok"]
        (failed,) = [e for e in entries if e["status"] == "failed"]
        assert failed["kind"] == "exception"
        assert "boom" in failed["error"]

    def test_resume_executes_only_unfinished_points(
        self, monkeypatch, executor_factory, tmp_path
    ):
        # First pass: the killer config breaks its worker and fails.
        # Second pass (killer now behaves): resume re-runs it alone.
        marker = tmp_path / "be-nice"

        def stub(cfg):
            if cfg.seed == KILLER and not marker.exists():
                os._exit(13)
            return cfg.seed

        monkeypatch.setattr(exmod, "run_scenario", stub)
        ex = executor_factory(
            processes=2, use_cache=True, cache_dir=str(tmp_path), max_retries=0
        )
        first = ex.run(cfgs(1, 2, KILLER, 3))
        assert isinstance(first[2], FailedRun)

        marker.touch()
        second = ex.run(cfgs(1, 2, KILLER, 3), resume=True)
        assert second == [1, 2, KILLER, 3]
        assert ex.last_resumed == 3  # finished points came from the journal
        assert ex.last_executed == 1  # only the failed point re-ran

    def test_resume_without_cache_rejected(self, executor_factory):
        ex = executor_factory(processes=1, use_cache=False)
        with pytest.raises(ExecutorError):
            ex.run(cfgs(1), resume=True)

    def test_torn_journal_line_ignored(
        self, monkeypatch, executor_factory, tmp_path
    ):
        monkeypatch.setattr(exmod, "run_scenario", lambda cfg: cfg.seed)
        ex = executor_factory(
            processes=1, use_cache=True, cache_dir=str(tmp_path)
        )
        ex.run(cfgs(1, 2))
        # Simulate a kill -9 mid-append: a truncated trailing line.
        with open(ex.journal_path, "a") as fh:
            fh.write('{"key": "deadbeef", "sta')
        out = ex.run(cfgs(1, 2), resume=True)
        assert out == [1, 2]
        assert ex.last_resumed == 2

    def test_journal_truncated_at_any_byte_offset(
        self, monkeypatch, executor_factory, tmp_path
    ):
        # kill -9 mid-append can cut the file at ANY byte — including
        # inside a multi-byte UTF-8 sequence, which text-mode readers
        # blow up on (UnicodeDecodeError) before json even gets a say.
        def stub(cfg):
            if cfg.seed == 5:
                raise RuntimeError("ошибка: cursed point")  # non-ASCII
            return cfg.seed

        monkeypatch.setattr(exmod, "run_scenario", stub)
        ex = executor_factory(
            processes=1, use_cache=True, cache_dir=str(tmp_path), max_retries=0
        )
        ex.run(cfgs(1, 5, 2))
        intact = ex.journal_path.read_bytes()
        assert b"\xd0" in intact  # the Cyrillic error really is multi-byte
        for cut in range(1, len(intact)):
            ex.journal_path.write_bytes(intact[:cut])
            statuses = exmod._Journal(ex.journal_path).completed_keys()
            # Never raises, and never invents an ok that isn't fully
            # present in the surviving prefix.
            assert sum(1 for s in statuses.values() if s == "ok") <= 2
        # Full file: both ok points resume, the failed one re-runs.
        ex.journal_path.write_bytes(intact)
        out = ex.run(cfgs(1, 5, 2), resume=True)
        assert out[0] == 1 and out[2] == 2
        assert ex.last_resumed == 2


class TestCacheCorruption:
    def test_truncated_entry_is_a_miss_and_recomputed(self, tmp_path):
        base = ScenarioConfig(seed=11, **SMALL)
        kwargs = dict(
            replications=1, processes=1, cache=True, cache_dir=str(tmp_path)
        )
        first = run_sweep(base, "pause_time", [0.0], ["aodv"], **kwargs)
        assert first.cache_misses == 1
        (entry,) = (tmp_path / "sweep").rglob("*.pkl")
        # Truncate mid-pickle (a torn write survived a crash).
        blob = entry.read_bytes()
        entry.write_bytes(blob[: len(blob) // 2])
        again = run_sweep(base, "pause_time", [0.0], ["aodv"], **kwargs)
        assert (again.cache_hits, again.cache_misses) == (0, 1)
        assert again.raw == first.raw

    def test_put_leaves_no_tmp_litter(self, tmp_path):
        base = ScenarioConfig(seed=12, **SMALL)
        run_sweep(
            base, "pause_time", [0.0], ["aodv"],
            replications=1, processes=1, cache=True, cache_dir=str(tmp_path),
        )
        stray = [p for p in (tmp_path / "sweep").rglob("*") if ".tmp" in p.name]
        assert stray == []


class TestSweepFailureSurface:
    def test_run_sweep_reports_failures_and_nan_cells(
        self, monkeypatch, tmp_path
    ):
        def stub(cfg):
            if cfg.pause_time == 5.0:
                raise RuntimeError("cursed cell")
            from repro.stats.metrics import MetricsSummary

            return MetricsSummary(
                protocol=cfg.protocol, duration=cfg.duration, data_sent=10,
                data_received=8, pdr=0.8, avg_delay=0.01, p95_delay=0.02,
                avg_hops=2.0, throughput_bps=1e4, routing_overhead_packets=5,
                routing_overhead_bytes=500, normalized_routing_load=0.6,
                mac_overhead_frames=20, normalized_mac_load=2.5,
                drops_no_route=0, drops_buffer=0, drops_ifq=0, drops_retry=0,
                mac_collisions=0,
            )

        monkeypatch.setattr(exmod, "run_scenario", stub)
        monkeypatch.setenv("MANETSIM_PROCESSES", "1")
        monkeypatch.setenv("MANETSIM_JOB_RETRIES", "0")
        base = ScenarioConfig(seed=13, **SMALL)
        result = run_sweep(
            base, "pause_time", [0.0, 5.0], ["aodv"],
            replications=1, cache=False,
        )
        assert not result.ok
        assert len(result.failures) == 1
        assert result.failures[0].config.pause_time == 5.0
        series = result.series("aodv", "pdr")
        assert series[0] == pytest.approx(0.8)
        assert series[1] != series[1]  # nan cell, but still plottable
