"""Gauss-Markov, Manhattan, static placements, and the manager."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ConfigurationError, RngStreams
from repro.mobility import (
    Field,
    GaussMarkov,
    ManhattanGrid,
    MobilityManager,
    StaticPosition,
    grid_placement,
    line_placement,
    uniform_placement,
)

FIELD = Field(600.0, 600.0)


class TestGaussMarkov:
    def make(self, seed=0, alpha=0.75):
        rng = RngStreams(seed).stream("gm")
        return GaussMarkov(FIELD, rng, mean_speed=10.0, alpha=alpha)

    def test_stays_in_field(self):
        m = self.make(seed=2)
        for t in np.linspace(0.0, 3000.0, 500):
            x, y = m.position(float(t))
            assert FIELD.contains(x, y)

    def test_alpha_one_keeps_speed_process_constant(self):
        m = self.make(seed=4, alpha=1.0)
        m.position(200.0)
        # With alpha=1 there is no innovation: the internal speed process
        # never changes (boundary clamping may still shorten individual
        # legs' effective displacement).
        assert m._speed == pytest.approx(10.0)
        unclamped = [
            leg.speed
            for leg in m._legs[1:]
            if 0 < leg.x1 < FIELD.width and 0 < leg.y1 < FIELD.height
        ]
        assert any(s == pytest.approx(10.0) for s in unclamped)

    def test_invalid_params(self):
        rng = RngStreams(0).stream("g")
        with pytest.raises(ConfigurationError):
            GaussMarkov(FIELD, rng, mean_speed=10.0, alpha=1.5)
        with pytest.raises(ConfigurationError):
            GaussMarkov(FIELD, rng, mean_speed=0.0)
        with pytest.raises(ConfigurationError):
            GaussMarkov(FIELD, rng, mean_speed=5.0, update_interval=0.0)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 300), t=st.floats(0.0, 1000.0))
    def test_property_in_field(self, seed, t):
        x, y = self.make(seed=seed).position(t)
        assert FIELD.contains(x, y)


class TestManhattan:
    def make(self, seed=0):
        rng = RngStreams(seed).stream("mh")
        return ManhattanGrid(FIELD, rng, max_speed=15.0, min_speed=5.0, blocks_x=4, blocks_y=4)

    def test_stays_on_streets(self):
        m = self.make(seed=1)
        bw = FIELD.width / 4
        bh = FIELD.height / 4
        for t in np.linspace(0.0, 2000.0, 400):
            x, y = m.position(float(t))
            assert FIELD.contains(x, y)
            on_v = min(abs(x - k * bw) for k in range(5)) < 1e-6
            on_h = min(abs(y - k * bh) for k in range(5)) < 1e-6
            assert on_v or on_h, (x, y)

    def test_invalid_params(self):
        rng = RngStreams(0).stream("m")
        with pytest.raises(ConfigurationError):
            ManhattanGrid(FIELD, rng, max_speed=10.0, blocks_x=0)
        with pytest.raises(ConfigurationError):
            ManhattanGrid(FIELD, rng, max_speed=0.0)


class TestPlacements:
    def test_static_position(self):
        p = StaticPosition(10.0, 20.0)
        assert p.position(0.0) == (10.0, 20.0)
        assert p.position(1e6) == (10.0, 20.0)
        assert p.speed(5.0) == 0.0

    def test_uniform_placement(self):
        rng = RngStreams(0).stream("place")
        nodes = uniform_placement(FIELD, 50, rng)
        assert len(nodes) == 50
        for n in nodes:
            assert FIELD.contains(*n.position(0.0))

    def test_uniform_placement_negative_raises(self):
        rng = RngStreams(0).stream("p")
        with pytest.raises(ConfigurationError):
            uniform_placement(FIELD, -1, rng)

    def test_grid_placement(self):
        nodes = grid_placement(FIELD, 9)
        assert len(nodes) == 9
        xs = {n.x for n in nodes}
        ys = {n.y for n in nodes}
        assert len(xs) >= 3 and len(ys) >= 3
        for n in nodes:
            assert FIELD.contains(n.x, n.y)

    def test_line_placement(self):
        nodes = line_placement(200.0, 5)
        assert [n.x for n in nodes] == [0.0, 200.0, 400.0, 600.0, 800.0]
        assert all(n.y == 0.0 for n in nodes)

    def test_line_placement_invalid(self):
        with pytest.raises(ConfigurationError):
            line_placement(0.0, 5)
        with pytest.raises(ConfigurationError):
            line_placement(10.0, 0)


class TestManager:
    def test_positions_shape_and_values(self):
        nodes = line_placement(100.0, 4)
        mgr = MobilityManager(nodes)
        pos = mgr.positions(0.0)
        assert pos.shape == (4, 2)
        assert pos[2, 0] == 200.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            MobilityManager([])

    def test_distance(self):
        mgr = MobilityManager(line_placement(300.0, 3))
        assert mgr.distance(0, 2, 0.0) == pytest.approx(600.0)

    def test_distances_from(self):
        mgr = MobilityManager(line_placement(100.0, 4))
        d = mgr.distances_from(1, 0.0)
        assert d.tolist() == [100.0, 0.0, 100.0, 200.0]

    def test_cache_tracks_time(self):
        rng = RngStreams(1).stream("mg")
        from repro.mobility import RandomWaypoint

        mgr = MobilityManager([RandomWaypoint(FIELD, rng, max_speed=10.0)])
        p0 = mgr.positions(0.0).copy()
        p1 = mgr.positions(50.0).copy()
        assert not np.array_equal(p0, p1)
        # Same time returns identical snapshot.
        assert np.array_equal(mgr.positions(50.0), p1)

    def test_invalidate(self):
        mgr = MobilityManager(line_placement(10.0, 2))
        mgr.positions(0.0)
        mgr.invalidate()
        assert mgr.positions(0.0).shape == (2, 2)
