"""Random walk / random direction models."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ConfigurationError, RngStreams
from repro.mobility import Field, RandomDirection, RandomWalk
from repro.mobility.walk import reflect

FIELD = Field(500.0, 400.0)


class TestReflect:
    def test_inside_unchanged(self):
        assert reflect(3.0, 10.0) == pytest.approx(3.0)

    def test_single_bounce(self):
        assert reflect(12.0, 10.0) == pytest.approx(8.0)
        assert reflect(-2.0, 10.0) == pytest.approx(2.0)

    def test_multiple_bounces(self):
        assert reflect(23.0, 10.0) == pytest.approx(3.0)
        assert reflect(-13.0, 10.0) == pytest.approx(7.0)

    def test_bad_limit(self):
        with pytest.raises(ConfigurationError):
            reflect(1.0, 0.0)

    @given(st.floats(-1e5, 1e5), st.floats(0.1, 1e3))
    def test_property_in_range(self, v, lim):
        r = reflect(v, lim)
        assert 0.0 <= r <= lim


class TestRandomWalk:
    def make(self, seed=0, vmax=10.0):
        rng = RngStreams(seed).stream("walk")
        return RandomWalk(FIELD, rng, max_speed=vmax, min_speed=1.0, step_time=5.0)

    def test_stays_in_field(self):
        m = self.make(seed=4)
        for t in np.linspace(0.0, 2000.0, 400):
            x, y = m.position(float(t))
            assert FIELD.contains(x, y), (t, x, y)

    def test_speed_bounds(self):
        m = self.make(seed=6, vmax=10.0)
        for t in np.linspace(0.1, 500.0, 100):
            assert 0.0 <= m.speed(float(t)) <= 10.0 + 1e-9

    def test_moves(self):
        m = self.make(seed=8)
        assert m.position(0.0) != m.position(100.0)

    def test_invalid_params(self):
        rng = RngStreams(0).stream("w")
        with pytest.raises(ConfigurationError):
            RandomWalk(FIELD, rng, max_speed=0.0)
        with pytest.raises(ConfigurationError):
            RandomWalk(FIELD, rng, max_speed=5.0, step_time=0.0)
        with pytest.raises(ConfigurationError):
            RandomWalk(FIELD, rng, max_speed=5.0, min_speed=7.0)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 500), t=st.floats(0.0, 800.0))
    def test_property_in_field(self, seed, t):
        m = self.make(seed=seed)
        x, y = m.position(t)
        assert FIELD.contains(x, y)


class TestRandomDirection:
    def make(self, seed=0, pause=5.0):
        rng = RngStreams(seed).stream("dir")
        return RandomDirection(FIELD, rng, max_speed=15.0, min_speed=1.0, pause_time=pause)

    def test_stays_in_field(self):
        m = self.make(seed=3)
        for t in np.linspace(0.0, 2000.0, 400):
            x, y = m.position(float(t))
            assert FIELD.contains(x, y)

    def test_legs_end_on_boundary(self):
        m = self.make(seed=5, pause=0.0)
        m.position(1500.0)
        move_legs = [leg for leg in m._legs[1:] if leg.speed > 0]
        assert move_legs
        for leg in move_legs:
            on_edge = (
                leg.x1 < 1e-6
                or abs(leg.x1 - FIELD.width) < 1e-6
                or leg.y1 < 1e-6
                or abs(leg.y1 - FIELD.height) < 1e-6
            )
            assert on_edge, (leg.x1, leg.y1)

    def test_pause_between_moves(self):
        m = self.make(seed=7, pause=5.0)
        m.position(1000.0)
        kinds = ["pause" if leg.speed == 0 else "move" for leg in m._legs[1:] if leg.duration > 0]
        # Moves and pauses must alternate.
        for a, b in zip(kinds, kinds[1:]):
            assert a != b

    def test_invalid_params(self):
        rng = RngStreams(0).stream("d")
        with pytest.raises(ConfigurationError):
            RandomDirection(FIELD, rng, max_speed=-1.0)
        with pytest.raises(ConfigurationError):
            RandomDirection(FIELD, rng, max_speed=5.0, pause_time=-2.0)
