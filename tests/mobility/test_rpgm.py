"""Reference-point group mobility."""

import numpy as np
import pytest

from repro.core import ConfigurationError, RngStreams
from repro.mobility import Field, GroupCenter, GroupMember, make_groups

FIELD = Field(1000.0, 500.0)


def rng_factory(seed=3):
    streams = RngStreams(seed)
    return streams.stream


class TestGroupMember:
    def make(self, radius=80.0, seed=1):
        streams = RngStreams(seed)
        center = GroupCenter(FIELD, streams.stream("c"), max_speed=10.0)
        member = GroupMember(center, streams.stream("m"), FIELD, radius=radius)
        return center, member

    def test_member_stays_near_center(self):
        center, member = self.make(radius=80.0)
        for t in np.linspace(0.0, 500.0, 200):
            cx, cy = center.position(float(t))
            mx, my = member.position(float(t))
            # Field clamping can only pull the member *toward* the field,
            # so distance from the (unclamped) tether stays bounded.
            assert np.hypot(mx - cx, my - cy) <= 80.0 * 2 + 1e-6

    def test_member_stays_in_field(self):
        center, member = self.make()
        for t in np.linspace(0.0, 800.0, 300):
            x, y = member.position(float(t))
            assert FIELD.contains(x, y)

    def test_offset_interpolation_continuous(self):
        _, member = self.make()
        for t in np.linspace(0.0, 100.0, 50):
            x0, y0 = member.position(float(t))
            x1, y1 = member.position(float(t) + 1e-3)
            assert np.hypot(x1 - x0, y1 - y0) < 1.0

    def test_validation(self):
        streams = RngStreams(0)
        center = GroupCenter(FIELD, streams.stream("c"), max_speed=5.0)
        with pytest.raises(ConfigurationError):
            GroupMember(center, streams.stream("m"), FIELD, radius=0.0)
        with pytest.raises(ConfigurationError):
            GroupMember(center, streams.stream("m"), FIELD, offset_interval=0.0)

    def test_speed_indicative(self):
        _, member = self.make()
        s = member.speed(10.0)
        assert 0.0 <= s < 50.0


class TestMakeGroups:
    def test_membership_round_robin(self):
        members = make_groups(FIELD, rng_factory(), 10, 3, max_speed=10.0)
        assert len(members) == 10
        centers = {id(m.center) for m in members}
        assert len(centers) == 3

    def test_group_cohesion(self):
        members = make_groups(FIELD, rng_factory(5), 9, 3, max_speed=10.0, radius=60.0)
        groups = {}
        for m in members:
            groups.setdefault(id(m.center), []).append(m)
        for group in groups.values():
            xs = [m.position(100.0) for m in group]
            spread = max(
                np.hypot(a[0] - b[0], a[1] - b[1]) for a in xs for b in xs
            )
            assert spread <= 4 * 60.0  # same tether, bounded spread

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_groups(FIELD, rng_factory(), 5, 0, max_speed=10.0)
        with pytest.raises(ConfigurationError):
            make_groups(FIELD, rng_factory(), 5, 6, max_speed=10.0)


class TestScenarioIntegration:
    def test_rpgm_scenario_runs(self):
        from repro.scenario import ScenarioConfig, run_scenario

        s = run_scenario(ScenarioConfig(
            protocol="dsr", mobility="rpgm", rpgm_groups=3, n_nodes=12,
            field_size=(800.0, 400.0), duration=25.0, n_connections=3,
            traffic_start_window=(0.0, 5.0), seed=4,
        ))
        assert s.data_sent > 0
