"""Field, Leg, and LegBasedModel machinery."""

import pytest
from hypothesis import given, strategies as st

from repro.core import ConfigurationError
from repro.mobility.base import Field, Leg, LegBasedModel


class TestField:
    def test_contains(self):
        f = Field(100.0, 50.0)
        assert f.contains(0, 0)
        assert f.contains(100, 50)
        assert f.contains(50, 25)
        assert not f.contains(101, 25)
        assert not f.contains(50, -1)

    def test_invalid_dimensions_raise(self):
        with pytest.raises(ConfigurationError):
            Field(0.0, 10.0)
        with pytest.raises(ConfigurationError):
            Field(10.0, -5.0)

    def test_random_point_inside(self):
        import numpy as np

        f = Field(30.0, 70.0)
        rng = np.random.default_rng(0)
        for _ in range(100):
            x, y = f.random_point(rng)
            assert f.contains(x, y)

    def test_diagonal(self):
        assert Field(3.0, 4.0).diagonal == pytest.approx(5.0)


class TestLeg:
    def test_interpolation(self):
        leg = Leg(10.0, 20.0, 0.0, 0.0, 100.0, 0.0)
        assert leg.position(10.0) == (0.0, 0.0)
        assert leg.position(15.0) == (50.0, 0.0)
        assert leg.position(20.0) == (100.0, 0.0)

    def test_clamping_outside_span(self):
        leg = Leg(10.0, 20.0, 0.0, 0.0, 100.0, 0.0)
        assert leg.position(5.0) == (0.0, 0.0)
        assert leg.position(25.0) == (100.0, 0.0)

    def test_speed(self):
        leg = Leg(0.0, 10.0, 0.0, 0.0, 30.0, 40.0)
        assert leg.speed == pytest.approx(5.0)

    def test_pause_speed_zero(self):
        leg = Leg(0.0, 10.0, 5.0, 5.0, 5.0, 5.0)
        assert leg.speed == 0.0

    def test_zero_duration_leg(self):
        leg = Leg(1.0, 1.0, 2.0, 3.0, 2.0, 3.0)
        assert leg.speed == 0.0
        assert leg.position(1.0) == (2.0, 3.0)

    @given(st.floats(min_value=0.0, max_value=30.0))
    def test_position_is_on_segment(self, t):
        leg = Leg(0.0, 30.0, 0.0, 0.0, 90.0, 30.0)
        x, y = leg.position(t)
        assert 0.0 <= x <= 90.0
        assert 0.0 <= y <= 30.0
        # Collinearity: y/x ratio fixed along the segment.
        if x > 0:
            assert y / x == pytest.approx(30.0 / 90.0)


class _Stepper(LegBasedModel):
    """Test model: 10 m east every 1 s."""

    def _next_leg(self, prev):
        return Leg(prev.t1, prev.t1 + 1.0, prev.x1, prev.y1, prev.x1 + 10.0, prev.y1)


class _BrokenGap(LegBasedModel):
    def _next_leg(self, prev):
        return Leg(prev.t1 + 5.0, prev.t1 + 6.0, prev.x1, prev.y1, prev.x1, prev.y1)


class _ZeroLoop(LegBasedModel):
    def _next_leg(self, prev):
        return Leg(prev.t1, prev.t1, prev.x1, prev.y1, prev.x1, prev.y1)


class TestLegBasedModel:
    def test_lazy_extension_and_query(self):
        m = _Stepper(0.0, 0.0)
        assert m.position(0.5) == (5.0, 0.0)
        assert m.position(3.25) == (32.5, 0.0)

    def test_non_monotone_queries(self):
        m = _Stepper(0.0, 0.0)
        assert m.position(5.0) == (50.0, 0.0)
        assert m.position(1.0) == (10.0, 0.0)  # rewind works

    def test_negative_time_clamps_to_start(self):
        m = _Stepper(7.0, 3.0)
        assert m.position(-2.0) == (7.0, 3.0)

    def test_speed_query(self):
        m = _Stepper(0.0, 0.0)
        assert m.speed(0.5) == pytest.approx(10.0)

    def test_discontiguous_legs_rejected(self):
        m = _BrokenGap(0.0, 0.0)
        with pytest.raises(ConfigurationError):
            m.position(1.0)

    def test_zero_duration_loop_detected(self):
        m = _ZeroLoop(0.0, 0.0)
        with pytest.raises(ConfigurationError):
            m.position(1.0)
