"""Random-waypoint model invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ConfigurationError, RngStreams
from repro.mobility import Field, RandomWaypoint

FIELD = Field(1500.0, 300.0)


def make_model(seed=0, pause=0.0, vmax=20.0, vmin=0.0, steady=True):
    rng = RngStreams(seed).stream("mob")
    return RandomWaypoint(
        FIELD, rng, max_speed=vmax, min_speed=vmin, pause_time=pause, steady_state=steady
    )


def test_stays_in_field():
    m = make_model(seed=3)
    for t in np.linspace(0.0, 2000.0, 500):
        x, y = m.position(float(t))
        assert FIELD.contains(x, y), (t, x, y)


def test_speed_bounds():
    m = make_model(seed=5, vmax=20.0, vmin=1.0, pause=0.0, steady=False)
    for t in np.linspace(0.1, 1000.0, 200):
        s = m.speed(float(t))
        assert 0.0 <= s <= 20.0 + 1e-9


def test_pause_legs_present():
    m = make_model(seed=7, pause=30.0, steady=False)
    m.position(2000.0)  # force leg generation
    pauses = [leg for leg in m._legs[1:] if leg.speed == 0.0 and leg.duration > 0]
    moves = [leg for leg in m._legs[1:] if leg.speed > 0.0]
    assert pauses and moves
    for p in pauses:
        assert p.duration == pytest.approx(30.0) or p.t0 == 0.0 or p is m._legs[1]


def test_zero_pause_never_pauses():
    m = make_model(seed=9, pause=0.0, steady=False)
    m.position(2000.0)
    for leg in m._legs[1:]:
        if leg.duration > 0:
            assert leg.speed > 0.0


def test_deterministic_given_same_rng_seed():
    a = make_model(seed=11)
    b = make_model(seed=11)
    for t in (0.0, 10.0, 123.4, 999.0):
        assert a.position(t) == b.position(t)


def test_different_seeds_diverge():
    a = make_model(seed=1)
    b = make_model(seed=2)
    assert a.position(100.0) != b.position(100.0)


def test_continuity():
    """Position is continuous: small dt -> small displacement."""
    m = make_model(seed=13)
    for t in np.linspace(0.0, 500.0, 100):
        x0, y0 = m.position(float(t))
        x1, y1 = m.position(float(t) + 1e-3)
        assert np.hypot(x1 - x0, y1 - y0) <= 20.0 * 1e-3 + 1e-9


def test_invalid_parameters():
    rng = RngStreams(0).stream("m")
    with pytest.raises(ConfigurationError):
        RandomWaypoint(FIELD, rng, max_speed=0.0)
    with pytest.raises(ConfigurationError):
        RandomWaypoint(FIELD, rng, max_speed=10.0, min_speed=-1.0)
    with pytest.raises(ConfigurationError):
        RandomWaypoint(FIELD, rng, max_speed=10.0, min_speed=20.0)
    with pytest.raises(ConfigurationError):
        RandomWaypoint(FIELD, rng, max_speed=10.0, pause_time=-1.0)


def test_steady_state_speed_no_decay():
    """With steady-state init, mean speed over nodes is stable in time.

    The classic RWP flaw is decaying average speed; Navidi-Camp init
    should keep early and late means within a modest tolerance.
    """
    models = [make_model(seed=s, vmin=1.0, vmax=20.0) for s in range(60)]
    early = np.mean([m.speed(1.0) for m in models])
    late = np.mean([m.speed(3000.0) for m in models])
    assert late == pytest.approx(early, rel=0.35)


def test_high_pause_mostly_static():
    m = make_model(seed=21, pause=10_000.0)
    x0, y0 = m.position(0.0)
    x1, y1 = m.position(500.0)
    # With an enormous pause the node rarely moves within 500 s.
    assert np.hypot(x1 - x0, y1 - y0) <= FIELD.diagonal


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 1000),
    pause=st.sampled_from([0.0, 20.0, 300.0]),
    t=st.floats(min_value=0.0, max_value=1500.0),
)
def test_property_always_in_field(seed, pause, t):
    m = make_model(seed=seed, pause=pause)
    x, y = m.position(t)
    assert FIELD.contains(x, y)
