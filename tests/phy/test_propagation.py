"""Propagation model correctness and ns-2 calibration."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core import ConfigurationError
from repro.phy import (
    WAVELAN_914MHZ,
    FreeSpace,
    LogDistance,
    RadioParams,
    TwoRayGround,
    UnitDisk,
)


class TestFreeSpace:
    def test_inverse_square_law(self):
        m = FreeSpace()
        p1 = m.rx_power(1.0, 100.0)
        p2 = m.rx_power(1.0, 200.0)
        assert p1 / p2 == pytest.approx(4.0)

    def test_zero_distance_full_power(self):
        assert FreeSpace().rx_power(0.5, 0.0) == 0.5

    def test_linear_in_tx_power(self):
        m = FreeSpace()
        assert m.rx_power(2.0, 50.0) == pytest.approx(2 * m.rx_power(1.0, 50.0))

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            FreeSpace(frequency=0.0)
        with pytest.raises(ConfigurationError):
            FreeSpace(system_loss=0.5)

    def test_vec_matches_scalar(self):
        m = FreeSpace()
        d = np.array([0.0, 10.0, 100.0, 1000.0])
        vec = m.rx_power_vec(1.0, d)
        for i, di in enumerate(d):
            assert vec[i] == pytest.approx(m.rx_power(1.0, float(di)))


class TestTwoRayGround:
    def test_crossover_value(self):
        m = TwoRayGround()
        lam = 2.99792458e8 / 914e6
        assert m.crossover == pytest.approx(4 * math.pi * 1.5 * 1.5 / lam)

    def test_matches_friis_below_crossover(self):
        m = TwoRayGround()
        f = FreeSpace()
        d = m.crossover * 0.5
        assert m.rx_power(1.0, d) == pytest.approx(f.rx_power(1.0, d))

    def test_fourth_power_law_above_crossover(self):
        m = TwoRayGround()
        d = m.crossover * 4
        assert m.rx_power(1.0, d) / m.rx_power(1.0, 2 * d) == pytest.approx(16.0)

    def test_ns2_calibration_250m_rx(self):
        m = TwoRayGround()
        assert WAVELAN_914MHZ.rx_range(m) == pytest.approx(250.0, rel=1e-3)

    def test_ns2_calibration_550m_cs(self):
        m = TwoRayGround()
        assert WAVELAN_914MHZ.cs_range(m) == pytest.approx(550.0, rel=1e-3)

    def test_monotone_nonincreasing(self):
        m = TwoRayGround()
        d = np.linspace(1.0, 1000.0, 300)
        p = m.rx_power_vec(1.0, d)
        assert np.all(np.diff(p) <= 1e-18)

    def test_vec_matches_scalar(self):
        m = TwoRayGround()
        d = np.array([0.0, 50.0, m.crossover, 300.0, 900.0])
        vec = m.rx_power_vec(1.0, d)
        for i, di in enumerate(d):
            assert vec[i] == pytest.approx(m.rx_power(1.0, float(di)))

    def test_invalid_heights(self):
        with pytest.raises(ConfigurationError):
            TwoRayGround(height_tx=0.0)


class TestLogDistance:
    def test_friis_within_reference(self):
        m = LogDistance(exponent=3.5, reference_distance=10.0)
        f = FreeSpace()
        assert m.rx_power(1.0, 5.0) == pytest.approx(f.rx_power(1.0, 5.0))

    def test_exponent_beyond_reference(self):
        m = LogDistance(exponent=3.0, reference_distance=1.0)
        assert m.rx_power(1.0, 10.0) / m.rx_power(1.0, 100.0) == pytest.approx(1000.0)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            LogDistance(exponent=0.5)
        with pytest.raises(ConfigurationError):
            LogDistance(reference_distance=0.0)


class TestUnitDisk:
    def test_sharp_edge(self):
        m = UnitDisk(250.0)
        assert m.rx_power(1.0, 250.0) == 1.0
        assert m.rx_power(1.0, 250.0001) == 0.0

    def test_range_for_threshold(self):
        m = UnitDisk(100.0)
        assert m.range_for_threshold(1.0, 0.5) == 100.0
        assert m.range_for_threshold(0.1, 0.5) == 0.0

    def test_vec(self):
        m = UnitDisk(100.0)
        out = m.rx_power_vec(2.0, np.array([50.0, 150.0]))
        assert out.tolist() == [2.0, 0.0]

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            UnitDisk(0.0)


class TestRadioParams:
    def test_defaults_sane(self):
        p = WAVELAN_914MHZ
        assert p.bitrate == 2e6
        assert p.cs_threshold < p.rx_threshold

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RadioParams(bitrate=0)
        with pytest.raises(ConfigurationError):
            RadioParams(tx_power=0)
        with pytest.raises(ConfigurationError):
            RadioParams(rx_threshold=1e-10, cs_threshold=1e-9)
        with pytest.raises(ConfigurationError):
            RadioParams(capture_ratio=0.5)


@given(st.floats(min_value=1.0, max_value=5000.0), st.floats(min_value=1.0, max_value=5000.0))
def test_property_tworay_monotone(d1, d2):
    m = TwoRayGround()
    lo, hi = sorted((d1, d2))
    assert m.rx_power(1.0, lo) >= m.rx_power(1.0, hi)


@given(st.floats(min_value=1e-12, max_value=1e-8))
def test_property_range_solves_threshold(threshold):
    m = TwoRayGround()
    r = m.range_for_threshold(0.28183815, threshold)
    if r > 0:
        assert m.rx_power(0.28183815, r * 0.999) >= threshold
        assert m.rx_power(0.28183815, r * 1.001) <= threshold * 1.01
