"""Unit tests for the batched PHY arrival engine.

Scenario-level bit-identity with the per-pair path lives in
``tests/scenario/test_determinism.py``; these tests pin the engine's
unit-level contracts: when batching may switch on, reception outcomes
on hand-built topologies, the NAV-only overhear shortcut, the ledger's
scalar bookkeeping, and the ``begin_arrival`` end-time sentinel.
"""

import pytest

from repro.core import Simulator
from repro.mac.frames import Frame, FrameType
from repro.mobility import MobilityManager, line_placement
from repro.net.packet import BROADCAST, Packet, PacketKind
from repro.phy import Channel, Radio, RadioParams, UnitDisk


class BatchFakeMac:
    """Batch-safe callback recorder (quacks like a DCF for the engine)."""

    batch_safe = True
    batch_overhear = True
    promiscuous = False

    def __init__(self):
        self.received = []
        self.tx_done = []
        self.medium_events = 0
        self.navs = []

    def on_frame_received(self, frame, power):
        self.received.append((frame, power))

    def on_transmit_done(self, frame):
        self.tx_done.append(frame)

    def medium_changed(self):
        self.medium_events += 1

    def overhear_nav(self, until):
        self.navs.append(until)


def build(spacing, n, radius=250.0, batched=True, mac_cls=BatchFakeMac):
    sim = Simulator(seed=1)
    mob = MobilityManager(line_placement(spacing, n))
    params = RadioParams()
    chan = Channel(sim, mob, UnitDisk(radius), params)
    radios, macs = [], []
    for i in range(n):
        r = Radio(sim, i, params)
        m = mac_cls()
        r.mac = m
        chan.attach(r)
        radios.append(r)
        macs.append(m)
    if batched:
        assert chan.enable_batched()
    return sim, chan, radios, macs


def data_frame(src, dst, size=64):
    pkt = Packet(PacketKind.DATA, "test", src, dst, size, created=0.0)
    return Frame.data(src, dst, pkt)


# --------------------------------------------------------------- gating


def test_enable_batched_refuses_non_batch_safe_mac():
    class Reentrant(BatchFakeMac):
        batch_safe = False

    sim, chan, radios, macs = build(200.0, 2, batched=False, mac_cls=Reentrant)
    assert not chan.enable_batched()
    # The stack stays functional on the per-pair path.
    f = data_frame(0, 1)
    radios[0].transmit(f)
    sim.run()
    assert len(macs[1].received) == 1


def test_enable_batched_refuses_phy_tracing():
    from repro.core.trace import Tracer

    sim, chan, radios, macs = build(200.0, 2, batched=False)
    sim.tracer = Tracer(categories={"phy"})
    assert not chan.enable_batched()


def test_enable_batched_refuses_missing_radio():
    sim = Simulator(seed=1)
    mob = MobilityManager(line_placement(200.0, 3))
    params = RadioParams()
    chan = Channel(sim, mob, UnitDisk(250.0), params)
    r = Radio(sim, 0, params)
    r.mac = BatchFakeMac()
    chan.attach(r)  # ids 1 and 2 have no radio
    assert not chan.enable_batched()


# ------------------------------------------------------------ reception


@pytest.mark.parametrize("batched", [True, False])
def test_broadcast_reaches_all_in_range(batched):
    sim, chan, radios, macs = build(200.0, 3, batched=batched)
    f = Frame(FrameType.RTS, 0, BROADCAST, 44)
    radios[0].transmit(f)
    sim.run()
    chan.flush_phy_stats()
    assert len(macs[1].received) == 1  # 200 m: in range
    assert len(macs[2].received) == 0  # 400 m: out of range
    assert macs[0].tx_done == [f]


@pytest.mark.parametrize("batched", [True, False])
def test_collision_corrupts_both(batched):
    sim, chan, radios, macs = build(200.0, 3, batched=batched)
    sim.schedule(0.0, radios[0].transmit, Frame(FrameType.RTS, 0, BROADCAST, 44))
    sim.schedule(0.0, radios[2].transmit, Frame(FrameType.RTS, 2, BROADCAST, 44))
    sim.run()
    chan.flush_phy_stats()
    # Equal powers at the middle node: neither captures.
    assert macs[1].received == []
    assert radios[1].stats.collisions > 0


def test_powered_off_receiver_is_deaf_batched():
    sim, chan, radios, macs = build(200.0, 2)
    radios[1].power_off()
    radios[0].transmit(Frame(FrameType.RTS, 0, BROADCAST, 44))
    sim.run()
    chan.flush_phy_stats()
    assert macs[1].received == []
    assert radios[1].stats.down_rx_drops == 1


def test_batch_arrival_perf_counter_increments():
    sim, chan, radios, macs = build(200.0, 3)
    radios[0].transmit(Frame(FrameType.RTS, 0, BROADCAST, 44))
    sim.run()
    assert sim.perf.phy_batch_arrivals > 0
    assert sim.perf.phy_legacy_arrivals == 0


# ------------------------------------------------------------- overhear


def test_unicast_overhears_nav_only_on_third_party():
    sim, chan, radios, macs = build(100.0, 3)
    nav = 1.5e-3
    f = Frame(FrameType.RTS, 0, 1, 44, nav=nav)
    radios[0].transmit(f)
    sim.run()
    chan.flush_phy_stats()
    # Addressed node: full delivery. Third party: NAV update only.
    assert [fr for fr, _ in macs[1].received] == [f]
    assert macs[1].navs == []
    assert macs[2].received == []
    assert len(macs[2].navs) == 1
    end = f.airtime(radios[0].params.bitrate)
    assert macs[2].navs[0] == pytest.approx(end + nav)


def test_ack_overhear_sets_no_nav():
    sim, chan, radios, macs = build(100.0, 3)
    radios[0].transmit(Frame(FrameType.ACK, 0, 1, 14))
    sim.run()
    chan.flush_phy_stats()
    assert [f.ftype for f, _ in macs[1].received] == [FrameType.ACK]
    assert macs[2].received == []
    assert macs[2].navs == []


def test_promiscuous_mac_gets_full_data_delivery():
    class Snooper(BatchFakeMac):
        promiscuous = True

    sim, chan, radios, macs = build(100.0, 3, mac_cls=Snooper)
    f = data_frame(0, 1)
    radios[0].transmit(f)
    sim.run()
    chan.flush_phy_stats()
    # DSR-style snooping: overheard DATA must take the full path.
    assert [fr for fr, _ in macs[2].received] == [f]


# --------------------------------------------------------------- ledger


def test_ledger_scalar_twins_track_state():
    sim, chan, radios, macs = build(200.0, 3)
    led = chan._ledger
    assert (led.n_txing, led.n_down) == (0, 0)
    radios[1].power_off()
    radios[1].power_off()  # idempotent
    assert led.n_down == 1
    radios[1].power_on()
    radios[1].power_on()  # idempotent
    assert led.n_down == 0
    radios[0].transmit(Frame(FrameType.RTS, 0, BROADCAST, 44))
    assert led.n_txing == 1
    sim.run()
    assert led.n_txing == 0


# ----------------------------------------------------- begin_arrival API


def test_begin_arrival_end_sentinel_is_none():
    """Omitted *end* means "compute now + duration" — ``None``, not a
    negative float, is the sentinel, so every real timestamp (including
    0.0) is representable as an explicit end time."""
    sim, chan, radios, macs = build(200.0, 2, batched=False)
    f = Frame(FrameType.RTS, 0, BROADCAST, 44)
    entry = radios[1].begin_arrival(f, 1e-6, duration=2.0)
    assert entry is not None
    assert entry.end == pytest.approx(sim.now + 2.0)
    f2 = Frame(FrameType.RTS, 0, BROADCAST, 44)
    entry2 = radios[1].begin_arrival(f2, 1e-6, duration=2.0, end=0.0)
    assert entry2.end == 0.0
