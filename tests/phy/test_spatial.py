"""Spatial index correctness against brute force."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ConfigurationError
from repro.phy import SpatialIndex


def brute(positions, x, y, r):
    d = np.hypot(positions[:, 0] - x, positions[:, 1] - y)
    return set(np.nonzero(d <= r)[0].tolist())


def test_basic_query():
    pos = np.array([[0.0, 0.0], [10.0, 0.0], [100.0, 0.0]])
    idx = SpatialIndex(cell_size=50.0)
    idx.rebuild(pos)
    assert set(idx.query_radius(0.0, 0.0, 15.0)) == {0, 1}


def test_point_on_radius_included():
    pos = np.array([[0.0, 0.0], [10.0, 0.0]])
    idx = SpatialIndex(cell_size=5.0)
    idx.rebuild(pos)
    assert set(idx.query_radius(0.0, 0.0, 10.0)) == {0, 1}


def test_query_before_rebuild_raises():
    idx = SpatialIndex(cell_size=10.0)
    with pytest.raises(ConfigurationError):
        idx.query_radius(0, 0, 5)


def test_negative_radius_raises():
    idx = SpatialIndex(cell_size=10.0)
    idx.rebuild(np.zeros((1, 2)))
    with pytest.raises(ConfigurationError):
        idx.query_radius(0, 0, -1.0)


def test_bad_cell_size():
    with pytest.raises(ConfigurationError):
        SpatialIndex(cell_size=0.0)


def test_rebuild_replaces_contents():
    idx = SpatialIndex(cell_size=10.0)
    idx.rebuild(np.array([[0.0, 0.0]]))
    idx.rebuild(np.array([[100.0, 100.0]]))
    assert idx.query_radius(0.0, 0.0, 5.0) == []
    assert idx.query_radius(100.0, 100.0, 5.0) == [0]


@settings(max_examples=50, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(1, 120),
    radius=st.floats(min_value=1.0, max_value=600.0),
    cell=st.floats(min_value=10.0, max_value=500.0),
)
def test_property_matches_brute_force(seed, n, radius, cell):
    rng = np.random.default_rng(seed)
    pos = rng.uniform(0.0, 1500.0, size=(n, 2))
    qx, qy = rng.uniform(0.0, 1500.0, size=2)
    idx = SpatialIndex(cell_size=cell)
    idx.rebuild(pos)
    assert set(idx.query_radius(qx, qy, radius)) == brute(pos, qx, qy, radius)
