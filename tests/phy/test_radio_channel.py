"""Radio reception rules and channel fan-out."""

import pytest

from repro.core import ConfigurationError, SimulationError, Simulator
from repro.mac.frames import Frame
from repro.mobility import MobilityManager, line_placement
from repro.net.packet import Packet, PacketKind
from repro.phy import Channel, Radio, RadioParams, TwoRayGround, UnitDisk


class FakeMac:
    """Records radio callbacks."""

    def __init__(self):
        self.received = []
        self.tx_done = []
        self.medium_events = 0

    def on_frame_received(self, frame, power):
        self.received.append((frame, power))

    def on_transmit_done(self, frame):
        self.tx_done.append(frame)

    def medium_changed(self):
        self.medium_events += 1


def build(spacing, n, radius=250.0, grid_threshold=128):
    sim = Simulator(seed=1)
    mob = MobilityManager(line_placement(spacing, n))
    params = RadioParams()
    chan = Channel(sim, mob, UnitDisk(radius), params, grid_threshold=grid_threshold)
    radios, macs = [], []
    for i in range(n):
        r = Radio(sim, i, params)
        m = FakeMac()
        r.mac = m
        chan.attach(r)
        radios.append(r)
        macs.append(m)
    return sim, chan, radios, macs


def data_frame(src, dst, size=64):
    pkt = Packet(PacketKind.DATA, "test", src, dst, size, created=0.0)
    return Frame.data(src, dst, pkt)


def test_in_range_node_receives():
    sim, chan, radios, macs = build(200.0, 2)
    f = data_frame(0, 1)
    radios[0].transmit(f)
    sim.run()
    assert len(macs[1].received) == 1
    assert macs[1].received[0][0] is f
    assert macs[0].tx_done == [f]


def test_out_of_range_node_does_not_receive():
    sim, chan, radios, macs = build(300.0, 2)  # beyond the 250 m disk
    radios[0].transmit(data_frame(0, 1))
    sim.run()
    assert macs[1].received == []


def test_broadcast_reaches_all_in_range():
    sim, chan, radios, macs = build(200.0, 3)  # 0-1 and 1-2 in range, 0-2 not
    radios[1].transmit(data_frame(1, -1))
    sim.run()
    assert len(macs[0].received) == 1
    assert len(macs[2].received) == 1


def test_sender_does_not_hear_itself():
    sim, chan, radios, macs = build(200.0, 2)
    radios[0].transmit(data_frame(0, 1))
    sim.run()
    assert macs[0].received == []


def test_collision_two_simultaneous_senders():
    # Nodes 0 and 2 both in range of node 1; equal power -> collision.
    sim, chan, radios, macs = build(200.0, 3)
    radios[0].transmit(data_frame(0, 1))
    radios[2].transmit(data_frame(2, 1))
    sim.run()
    assert macs[1].received == []
    assert radios[1].stats.collisions >= 1


def test_capture_stronger_frame_survives():
    # Two-ray: node 1 at 50 m (strong) vs node 2 at 240 m (weak); ratio
    # far exceeds the 10 dB capture threshold.
    sim = Simulator(seed=1)
    from repro.mobility import StaticPosition

    mob = MobilityManager(
        [StaticPosition(0, 0), StaticPosition(50, 0), StaticPosition(240, 0)]
    )
    params = RadioParams()
    chan = Channel(sim, mob, TwoRayGround(), params)
    radios = [Radio(sim, i, params) for i in range(3)]
    macs = [FakeMac() for _ in range(3)]
    for r, m in zip(radios, macs):
        r.mac = m
        chan.attach(r)
    strong = data_frame(1, 0)
    weak = data_frame(2, 0)
    radios[1].transmit(strong)
    radios[2].transmit(weak)
    sim.run()
    assert [f for f, _ in macs[0].received] == [strong]
    assert radios[0].stats.capture_ignored == 1


def test_half_duplex_no_rx_while_tx():
    sim, chan, radios, macs = build(200.0, 2)
    radios[0].transmit(data_frame(0, 1, size=512))
    radios[1].transmit(data_frame(1, 0, size=512))  # same instant
    sim.run()
    assert macs[0].received == []
    assert macs[1].received == []
    assert radios[0].stats.halfduplex_drops + radios[1].stats.halfduplex_drops >= 2


def test_transmit_while_transmitting_raises():
    sim, chan, radios, macs = build(200.0, 2)
    radios[0].transmit(data_frame(0, 1))
    with pytest.raises(SimulationError):
        radios[0].transmit(data_frame(0, 1))


def test_unattached_radio_raises():
    sim = Simulator()
    r = Radio(sim, 0, RadioParams())
    with pytest.raises(SimulationError):
        r.transmit(data_frame(0, 1))


def test_carrier_busy_during_foreign_transmission():
    sim, chan, radios, macs = build(200.0, 2)
    f = data_frame(0, 1, size=512)
    radios[0].transmit(f)
    dur = f.airtime(RadioParams().bitrate)
    seen = {}

    def probe():
        seen["busy"] = radios[1].carrier_busy()
        seen["busy_until"] = radios[1].busy_until()

    sim.schedule(dur / 2, probe)
    sim.run()
    assert seen["busy"] is True
    assert seen["busy_until"] > dur / 2
    assert radios[1].carrier_busy() is False  # after the run drains


def test_weak_signal_marks_busy_but_not_received():
    # 300 m apart: beyond 250 m RX range, within 550 m CS range.
    sim = Simulator(seed=1)
    mob = MobilityManager(line_placement(300.0, 2))
    params = RadioParams()
    chan = Channel(sim, mob, TwoRayGround(), params)
    radios = [Radio(sim, i, params) for i in range(2)]
    macs = [FakeMac() for _ in range(2)]
    for r, m in zip(radios, macs):
        r.mac = m
        chan.attach(r)
    f = data_frame(0, 1, size=512)
    radios[0].transmit(f)
    seen = {}
    sim.schedule(f.airtime(params.bitrate) / 2, lambda: seen.update(busy=radios[1].carrier_busy()))
    sim.run()
    assert seen["busy"] is True
    assert macs[1].received == []


def test_attach_validation():
    sim, chan, radios, macs = build(200.0, 2)
    extra = Radio(sim, 0, RadioParams())
    with pytest.raises(ConfigurationError):
        chan.attach(extra)  # id 0 taken
    extra2 = Radio(sim, 99, RadioParams())
    with pytest.raises(ConfigurationError):
        chan.attach(extra2)  # id out of range


def test_grid_path_equivalent_to_brute_force():
    # Force the grid (threshold=1) and compare with brute force (large).
    for thresh in (1, 128):
        sim, chan, radios, macs = build(200.0, 6, grid_threshold=thresh)
        radios[2].transmit(data_frame(2, -1))
        sim.run()
        got = [i for i, m in enumerate(macs) if m.received]
        assert got == [1, 3], f"grid_threshold={thresh}"


def test_channel_stats_counters():
    sim, chan, radios, macs = build(200.0, 3)
    radios[1].transmit(data_frame(1, -1))
    sim.run()
    assert chan.stats.transmissions == 1
    assert chan.stats.deliveries_attempted == 2
    assert chan.stats.airtime > 0
