"""CBR/on-off sources and connection-pattern generation."""

import pytest

from repro.core import ConfigurationError, RngStreams, Simulator
from repro.mac import IdealMac
from repro.mobility import line_placement
from repro.net import build_network
from repro.phy import RadioParams, UnitDisk
from repro.routing.oracle import OracleRouting
from repro.traffic import CbrSource, OnOffSource, generate_connections


def make_pair():
    """Two adjacent nodes with oracle routing over an ideal MAC."""
    sim = Simulator(seed=1)
    agents = []

    def routing_factory(s, nid, mac, rng):
        a = OracleRouting(s, nid, mac, rng, radio_range=250.0)
        agents.append(a)
        return a

    net = build_network(
        sim,
        line_placement(100.0, 2),
        routing_factory=routing_factory,
        mac_factory=lambda s, r, g: IdealMac(s, r),
        propagation=UnitDisk(250.0),
        radio_params=RadioParams(),
    )
    for a in agents:
        a.mobility = net.mobility
    return sim, net


class TestCbrSource:
    def test_rate_and_count(self):
        sim, net = make_pair()
        sent = []
        src = CbrSource(
            sim, net.nodes[0], dst=1, rate=4.0, size=64, flow_id=0,
            start=0.0, stop=10.0, jitter=0.0, on_send=sent.append,
        )
        src.begin()
        sim.run(until=20.0)
        assert src.packets_sent == 40  # 4 pkt/s for 10 s
        assert len(sent) == 40

    def test_sequence_numbers_increment(self):
        sim, net = make_pair()
        sent = []
        src = CbrSource(sim, net.nodes[0], 1, rate=2.0, size=64, flow_id=7,
                        stop=5.0, jitter=0.0, on_send=sent.append)
        src.begin()
        sim.run(until=10.0)
        seqs = [p.payload.seq for p in sent]
        assert seqs == list(range(len(seqs)))
        assert all(p.payload.flow_id == 7 for p in sent)

    def test_start_delay_respected(self):
        sim, net = make_pair()
        sent = []
        src = CbrSource(sim, net.nodes[0], 1, rate=1.0, size=64, flow_id=0,
                        start=5.0, stop=8.0, jitter=0.0, on_send=sent.append)
        src.begin()
        sim.run(until=10.0)
        assert all(p.created >= 5.0 for p in sent)
        assert len(sent) == 3

    def test_jitter_desynchronizes(self):
        sim, net = make_pair()
        times = []
        rng = RngStreams(3).stream("t")
        src = CbrSource(sim, net.nodes[0], 1, rate=10.0, size=64, flow_id=0,
                        stop=5.0, rng=rng, jitter=0.5,
                        on_send=lambda p: times.append(p.created))
        src.begin()
        sim.run(until=6.0)
        gaps = {round(b - a, 6) for a, b in zip(times, times[1:])}
        assert len(gaps) > 1  # gaps vary with jitter

    def test_validation(self):
        sim, net = make_pair()
        with pytest.raises(ConfigurationError):
            CbrSource(sim, net.nodes[0], 1, rate=0.0, size=64, flow_id=0)
        with pytest.raises(ConfigurationError):
            CbrSource(sim, net.nodes[0], 1, rate=1.0, size=0, flow_id=0)
        with pytest.raises(ConfigurationError):
            CbrSource(sim, net.nodes[0], 1, rate=1.0, size=64, flow_id=0,
                      start=10.0, stop=5.0)
        with pytest.raises(ConfigurationError):
            CbrSource(sim, net.nodes[0], 1, rate=1.0, size=64, flow_id=0, jitter=1.5)

    def test_double_start_rejected(self):
        sim, net = make_pair()
        src = CbrSource(sim, net.nodes[0], 1, rate=1.0, size=64, flow_id=0)
        src.begin()
        with pytest.raises(ConfigurationError):
            src.begin()


class TestOnOffSource:
    def test_produces_packets_at_bounded_rate(self):
        sim, net = make_pair()
        sent = []
        rng = RngStreams(5).stream("onoff")
        src = OnOffSource(sim, net.nodes[0], 1, rate=10.0, size=64, flow_id=0,
                          rng=rng, on_mean=1.0, off_mean=1.0, stop=20.0,
                          on_send=sent.append)
        src.begin()
        sim.run(until=25.0)
        assert 0 < len(sent) < 10.0 * 20.0  # strictly less than full rate

    def test_validation(self):
        sim, net = make_pair()
        rng = RngStreams(5).stream("x")
        with pytest.raises(ConfigurationError):
            OnOffSource(sim, net.nodes[0], 1, rate=-1.0, size=64, flow_id=0, rng=rng)
        with pytest.raises(ConfigurationError):
            OnOffSource(sim, net.nodes[0], 1, rate=1.0, size=64, flow_id=0,
                        rng=rng, on_mean=0.0)


class TestPatterns:
    def test_basic_generation(self):
        rng = RngStreams(1).stream("pat")
        conns = generate_connections(50, 10, rng)
        assert len(conns) == 10
        assert all(c.src != c.dst for c in conns)
        assert all(0 <= c.src < 50 and 0 <= c.dst < 50 for c in conns)
        assert len({c.flow_id for c in conns}) == 10

    def test_distinct_sources_when_possible(self):
        rng = RngStreams(2).stream("pat")
        conns = generate_connections(50, 10, rng)
        assert len({c.src for c in conns}) == 10

    def test_more_flows_than_nodes_allowed(self):
        rng = RngStreams(3).stream("pat")
        conns = generate_connections(5, 12, rng)
        assert len(conns) == 12

    def test_start_window(self):
        rng = RngStreams(4).stream("pat")
        conns = generate_connections(20, 10, rng, start_window=(10.0, 20.0))
        assert all(10.0 <= c.start <= 20.0 for c in conns)

    def test_validation(self):
        rng = RngStreams(5).stream("pat")
        with pytest.raises(ConfigurationError):
            generate_connections(1, 1, rng)
        with pytest.raises(ConfigurationError):
            generate_connections(10, 0, rng)
        with pytest.raises(ConfigurationError):
            generate_connections(10, 1, rng, start_window=(5.0, 1.0))

    def test_deterministic(self):
        a = generate_connections(30, 8, RngStreams(7).stream("pat"))
        b = generate_connections(30, 8, RngStreams(7).stream("pat"))
        assert a == b
