"""Stop-and-wait reliable transport."""

import pytest

from repro.core import ConfigurationError, Simulator
from repro.mac import DcfMac
from repro.mobility import StaticPosition
from repro.net import build_network
from repro.phy import RadioParams, UnitDisk
from repro.routing import Aodv
from repro.traffic import ReliableSink, ReliableSource

CHAIN = [(0.0, 0.0), (200.0, 0.0), (400.0, 0.0)]


def make_net(positions=CHAIN, seed=1):
    sim = Simulator(seed=seed)
    net = build_network(
        sim,
        [StaticPosition(x, y) for x, y in positions],
        routing_factory=lambda s, n, m, r: Aodv(s, n, m, r),
        mac_factory=lambda s, r, g: DcfMac(s, r, g),
        propagation=UnitDisk(250.0),
        radio_params=RadioParams(),
    )
    net.start_routing()
    return sim, net


def make_transfer(sim, net, src=0, dst=2, n=10, **kw):
    sink = ReliableSink(net.nodes[dst], flow_id=1)
    source = ReliableSource(
        sim, net.nodes[src], dst, n_segments=n, size=256, flow_id=1, **kw
    )
    return source, sink


class TestHappyPath:
    def test_full_transfer_completes(self):
        sim, net = make_net()
        source, sink = make_transfer(sim, net, n=10)
        source.begin()
        sim.run(until=60.0)
        assert source.complete and not source.abandoned
        assert sink.received == set(range(10))
        assert source.transfer_time > 0

    def test_segments_in_order_window_one(self):
        sim, net = make_net()
        source, sink = make_transfer(sim, net, n=5)
        source.begin()
        sim.run(until=60.0)
        assert source.acked == 5
        assert source.next_seq == 5


class TestLossRecovery:
    def test_retransmits_through_lossy_control_plane(self):
        sim, net = make_net(seed=3)
        rng = sim.rng.stream("chaos")
        # Drop 20% of ALL mac sends at the middle relay.
        relay = net.nodes[1].mac
        orig = relay.send

        def lossy(packet, next_hop):
            if rng.uniform() < 0.2:
                return
            orig(packet, next_hop)

        relay.send = lossy
        source, sink = make_transfer(sim, net, n=8, timeout=0.3)
        source.begin()
        sim.run(until=120.0)
        assert source.complete
        assert source.retransmissions > 0
        assert sink.received == set(range(8))

    def test_duplicate_data_reacked_not_recounted(self):
        sim, net = make_net(seed=5)
        source, sink = make_transfer(sim, net, n=3, timeout=0.01)
        # Timeout far below RTT across 2 hops with discovery: duplicates
        # guaranteed.
        source.begin()
        sim.run(until=60.0)
        assert source.complete
        assert len(sink.received) == 3

    def test_partitioned_destination_abandons(self):
        sim, net = make_net(positions=[(0.0, 0.0), (5000.0, 0.0)], seed=7)
        sink = ReliableSink(net.nodes[1], flow_id=1)
        done = []
        source = ReliableSource(
            sim, net.nodes[0], 1, n_segments=4, size=128, flow_id=1,
            timeout=0.2, max_retries=3, on_complete=done.append,
        )
        source.begin()
        sim.run(until=120.0)
        assert source.abandoned
        assert done == [source]
        assert source.acked == 0


class TestValidation:
    def test_bad_parameters(self):
        sim, net = make_net()
        with pytest.raises(ConfigurationError):
            ReliableSource(sim, net.nodes[0], 1, n_segments=0, size=64, flow_id=1)
        with pytest.raises(ConfigurationError):
            ReliableSource(sim, net.nodes[0], 1, n_segments=1, size=0, flow_id=1)
        with pytest.raises(ConfigurationError):
            ReliableSource(sim, net.nodes[0], 1, n_segments=1, size=64,
                           flow_id=1, timeout=0.0)

    def test_on_complete_callback_fires_once(self):
        sim, net = make_net()
        done = []
        source, sink = make_transfer(sim, net, n=2, on_complete=done.append)
        source.begin()
        sim.run(until=60.0)
        assert done == [source]
