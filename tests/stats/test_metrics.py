"""Metrics collection and aggregation."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.scenario import ScenarioConfig, run_scenario
from repro.stats import (
    MetricsCollector,
    PointEstimate,
    aggregate_rows,
    estimate,
    t_quantile,
)


def run_small(protocol="aodv", seed=2, **kw):
    cfg = ScenarioConfig(
        protocol=protocol,
        n_nodes=12,
        field_size=(600.0, 300.0),
        duration=40.0,
        n_connections=4,
        traffic_start_window=(0.0, 5.0),
        seed=seed,
        **kw,
    )
    return run_scenario(cfg)


class TestSummaryInvariants:
    def test_conservation_received_le_sent(self):
        s = run_small()
        assert 0 <= s.data_received <= s.data_sent
        assert 0.0 <= s.pdr <= 1.0

    def test_flow_totals_match_global(self):
        s = run_small(seed=3)
        assert sum(f.sent for f in s.flows.values()) == s.data_sent
        assert sum(f.received for f in s.flows.values()) == s.data_received

    def test_delays_nonnegative(self):
        s = run_small(seed=4)
        assert s.avg_delay >= 0.0
        assert s.p95_delay >= s.avg_delay * 0.5  # p95 can't be wildly below mean

    def test_throughput_consistent_with_received(self):
        s = run_small(seed=5)
        # 64-byte payloads: throughput = received * 64 * 8 / duration.
        expected = s.data_received * 64 * 8 / s.duration
        assert s.throughput_bps == pytest.approx(expected, rel=0.01)

    def test_nrl_matches_ratio(self):
        s = run_small(seed=6)
        if s.data_received:
            assert s.normalized_routing_load == pytest.approx(
                s.routing_overhead_packets / s.data_received
            )

    def test_mac_load_ge_nrl(self):
        s = run_small(seed=7)
        assert s.normalized_mac_load >= s.normalized_routing_load

    def test_oracle_zero_overhead(self):
        s = run_small(protocol="oracle", seed=8)
        assert s.routing_overhead_packets == 0
        assert s.normalized_routing_load == 0.0

    def test_row_keys(self):
        s = run_small(seed=9)
        row = s.row()
        assert set(row) == {
            "pdr", "avg_delay", "nrl", "mac_load",
            "overhead_pkts", "throughput_bps", "avg_hops",
        }


class TestCollectorUnit:
    def test_duplicate_deliveries_counted_once(self):
        from repro.core import Simulator
        from repro.net import Packet, PacketKind
        from repro.traffic.cbr import FlowPayload

        c = MetricsCollector("test")

        class FakeSim:
            now = 1.0

        c._sim = FakeSim()
        pkt = Packet(PacketKind.DATA, "cbr", 0, 1, 64, created=0.5,
                     payload=FlowPayload(0, 0))
        c.flow(0, 0, 1)
        c.on_send(pkt)
        c.on_receive(pkt, prev_hop=0)
        c.on_receive(pkt, prev_hop=0)  # duplicate
        assert c.data_received == 1

    def test_non_cbr_packets_ignored(self):
        from repro.net import Packet, PacketKind

        c = MetricsCollector("test")

        class FakeSim:
            now = 1.0

        c._sim = FakeSim()
        ctrl = Packet(PacketKind.CONTROL, "aodv", 0, 1, 24, created=0.0)
        c.on_receive(ctrl, prev_hop=0)
        assert c.data_received == 0


class TestAggregation:
    def test_estimate_mean(self):
        e = estimate([1.0, 2.0, 3.0])
        assert e.mean == pytest.approx(2.0)
        assert e.n == 3
        assert e.half_width > 0

    def test_single_value_no_ci(self):
        e = estimate([5.0])
        assert e.mean == 5.0
        assert math.isnan(e.half_width)

    def test_empty(self):
        e = estimate([])
        assert math.isnan(e.mean) and e.n == 0

    def test_nonfinite_filtered(self):
        e = estimate([1.0, float("inf"), 2.0, float("nan")])
        assert e.mean == pytest.approx(1.5)
        assert e.n == 2

    def test_t_quantile_matches_scipy(self):
        from scipy import stats as st_

        assert t_quantile(0.95, 4) == pytest.approx(st_.t.ppf(0.975, 4))

    def test_aggregate_rows(self):
        rows = [{"pdr": 0.9, "nrl": 1.0}, {"pdr": 0.8, "nrl": 2.0}]
        agg = aggregate_rows(rows)
        assert agg["pdr"].mean == pytest.approx(0.85)
        assert agg["nrl"].mean == pytest.approx(1.5)

    def test_point_estimate_str(self):
        assert "±" in str(PointEstimate(1.0, 0.1, 3))
        assert "±" not in str(PointEstimate(1.0, float("nan"), 1))

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=20))
    def test_ci_contains_mean_property(self, values):
        e = estimate(values)
        arr = np.asarray(values)
        assert e.mean == pytest.approx(float(arr.mean()), abs=1e-6, rel=1e-6)
        assert e.half_width >= 0 or math.isnan(e.half_width)


class TestWarmupCut:
    def test_measure_from_excludes_early_traffic(self):
        from repro.scenario import ScenarioConfig, run_scenario

        base = dict(
            protocol="aodv", n_nodes=12, field_size=(600.0, 300.0),
            duration=40.0, n_connections=4, traffic_start_window=(0.0, 5.0),
            seed=11,
        )
        full = run_scenario(ScenarioConfig(**base))
        cut = run_scenario(ScenarioConfig(**base, measure_from=20.0))
        assert cut.data_sent < full.data_sent
        assert cut.data_received <= cut.data_sent

    def test_measure_from_validation(self):
        import pytest as _pytest

        from repro.core import ConfigurationError
        from repro.scenario import ScenarioConfig

        with _pytest.raises(ConfigurationError):
            ScenarioConfig(duration=10.0, measure_from=10.0)
        with _pytest.raises(ConfigurationError):
            ScenarioConfig(measure_from=-1.0)


class TestStreamingMode:
    """Bounded-memory collection (MANETSIM_STREAM_STATS=1)."""

    def test_recent_set_dedups_and_bounds(self):
        from repro.stats.metrics import _RecentSet

        rs = _RecentSet(capacity=4)
        for uid in (1, 2, 3, 1, 2):
            rs.add(uid)
        assert 1 in rs and 3 in rs
        rs.add(4)
        rs.add(5)  # evicts 1 (oldest)
        assert 1 not in rs
        assert len(rs._set) == 4

    def test_hist_p95_error_bound(self):
        """Histogram p95 stays within one log-bin of the exact p95."""
        from repro.stats.metrics import _HIST_BINS, _hist_index, _hist_p95

        rng = np.random.default_rng(5)
        delays = rng.lognormal(mean=-4.0, sigma=1.5, size=2000)
        counts = np.zeros(_HIST_BINS, dtype=np.int64)
        for d in delays:
            counts[_hist_index(d)] += 1
        exact = float(np.percentile(delays, 95))
        approx = _hist_p95(counts, len(delays))
        # Within one log-bin either way (np.percentile interpolates a
        # hair above the order statistic the histogram brackets).
        bin_factor = 10 ** (9.0 / 1024)
        assert 1 / (bin_factor * 1.01) < approx / exact < bin_factor * 1.01

    def test_stream_collector_keeps_no_per_packet_state(self):
        cfg = ScenarioConfig(
            protocol="aodv", n_nodes=12, field_size=(600.0, 300.0),
            duration=40.0, n_connections=4,
            traffic_start_window=(0.0, 5.0), seed=2,
        )
        from repro.scenario.build import build_scenario

        sc = build_scenario(cfg)
        assert sc.collector.stream is False
        import os

        os.environ["MANETSIM_STREAM_STATS"] = "1"
        try:
            sc = build_scenario(cfg)
            assert sc.collector.stream is True
            summary = sc.run()
        finally:
            del os.environ["MANETSIM_STREAM_STATS"]
        assert summary.data_received > 0
        assert sc.collector._delays == []
        assert sc.collector._records == []
        for flow in summary.flows.values():
            assert flow.delays == []

    def test_stream_headline_close_to_exact(self):
        cfg = ScenarioConfig(
            protocol="aodv", n_nodes=12, field_size=(600.0, 300.0),
            duration=40.0, n_connections=4,
            traffic_start_window=(0.0, 5.0), seed=2,
        )
        import os

        exact = run_scenario(cfg)
        os.environ["MANETSIM_STREAM_STATS"] = "1"
        try:
            stream = run_scenario(cfg)
        finally:
            del os.environ["MANETSIM_STREAM_STATS"]
        assert stream.data_received == exact.data_received
        assert stream.avg_delay == pytest.approx(exact.avg_delay, rel=1e-12)
        assert stream.p95_delay == pytest.approx(exact.p95_delay, rel=0.05)


class TestShardPartialMerge:
    """merge_shard_partials unit behaviour (engine-independent)."""

    def _partial(self, records, flows=None, sent=0):
        from repro.stats.metrics import ShardPartial

        return ShardPartial(
            data_sent=sent,
            data_received=len(records),
            bytes_received=64 * len(records),
            records=records,
            flows=flows or {},
            layers=(0,) * 8,
        )

    def test_records_interleave_by_time_then_dst(self):
        from repro.stats.metrics import merge_shard_partials

        a = self._partial([(1.0, 5, 0.010, 2), (3.0, 5, 0.030, 2)], sent=4)
        b = self._partial([(2.0, 9, 0.020, 1)], sent=2)
        merged = merge_shard_partials("aodv", 10.0, [a, b])
        # Mean over the interleaved order == np.mean of [10, 20, 30] ms.
        exact = float(np.mean(np.asarray([0.010, 0.020, 0.030])))
        assert merged.avg_delay == exact
        assert merged.data_sent == 6
        assert merged.data_received == 3
        assert merged.pdr == pytest.approx(0.5)

    def test_flow_stats_merge_fieldwise(self):
        from repro.stats.metrics import FlowStats, merge_shard_partials

        a = self._partial(
            [(1.0, 5, 0.01, 1)],
            flows={0: FlowStats(0, 1, 5, sent=3, received=1, delays=[0.01]),
                   1: FlowStats(1, 2, 9, sent=0, received=0)},
            sent=3,
        )
        b = self._partial(
            [(2.0, 9, 0.02, 1)],
            flows={0: FlowStats(0, 1, 5),
                   1: FlowStats(1, 2, 9, sent=2, received=1, delays=[0.02])},
            sent=2,
        )
        merged = merge_shard_partials("aodv", 10.0, [a, b])
        assert merged.flows[0].sent == 3
        assert merged.flows[0].delays == [0.01]
        assert merged.flows[1].received == 1
        assert merged.flows[1].delays == [0.02]

    def test_empty_merge(self):
        from repro.stats.metrics import merge_shard_partials

        merged = merge_shard_partials("aodv", 10.0, [self._partial([])])
        assert merged.data_received == 0
        assert merged.avg_delay == 0.0
        assert merged.pdr == 0.0
