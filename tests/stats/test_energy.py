"""Energy accounting."""

import pytest

from repro.core import ConfigurationError
from repro.scenario import ScenarioConfig, build_scenario
from repro.stats.energy import EnergyParams, account_energy

SMALL = dict(
    n_nodes=10,
    field_size=(600.0, 300.0),
    duration=30.0,
    n_connections=3,
    traffic_start_window=(0.0, 5.0),
    seed=3,
)


def run(protocol="aodv", **kw):
    cfg = ScenarioConfig(protocol=protocol, **{**SMALL, **kw})
    scen = build_scenario(cfg)
    summary = scen.run()
    return scen, summary


class TestEnergyParams:
    def test_defaults(self):
        p = EnergyParams()
        assert p.tx_power_w > p.rx_power_w > p.idle_power_w

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EnergyParams(tx_power_w=-1.0)
        with pytest.raises(ConfigurationError):
            EnergyParams(tx_power_w=0.1, rx_power_w=0.4)


class TestAccounting:
    def test_idle_network_burns_idle_only(self):
        cfg = ScenarioConfig(protocol="dsr", **{**SMALL, "n_connections": 1,
                                                "traffic_start_window": (25.0, 29.0)})
        scen = build_scenario(cfg)
        # Don't start traffic or routing: the net stays silent.
        scen.sim.run(until=cfg.duration)
        report = account_energy(scen.network, cfg.duration)
        expected = cfg.duration * EnergyParams().idle_power_w * cfg.n_nodes
        assert report.total_joules == pytest.approx(expected, rel=1e-6)
        assert report.tx_joules == 0.0

    def test_active_network_burns_more(self):
        scen, summary = run("dsdv")
        report = account_energy(scen.network, SMALL["duration"])
        idle_only = SMALL["duration"] * EnergyParams().idle_power_w * SMALL["n_nodes"]
        assert report.total_joules > idle_only
        assert report.tx_joules > 0 and report.rx_joules > 0

    def test_per_node_sums_to_total(self):
        scen, _ = run("aodv")
        report = account_energy(scen.network, SMALL["duration"])
        assert sum(report.per_node_joules) == pytest.approx(report.total_joules)

    def test_proactive_costs_more_than_reactive_when_quiet(self):
        quiet = {**SMALL, "n_connections": 1, "duration": 60.0}
        scen_dsr, _ = run("dsr", **{k: v for k, v in quiet.items() if k != "duration"},
                          duration=60.0)
        scen_dsdv, _ = run("dsdv", **{k: v for k, v in quiet.items() if k != "duration"},
                           duration=60.0)
        e_dsr = account_energy(scen_dsr.network, 60.0)
        e_dsdv = account_energy(scen_dsdv.network, 60.0)
        assert e_dsdv.tx_joules > e_dsr.tx_joules

    def test_joules_per_delivered(self):
        scen, summary = run("aodv")
        report = account_energy(scen.network, SMALL["duration"])
        if summary.data_received:
            jpp = report.joules_per_delivered(summary.data_received)
            assert 0 < jpp < report.total_joules
        assert report.joules_per_delivered(0) == float("inf")

    def test_bad_duration(self):
        scen, _ = run("aodv")
        with pytest.raises(ConfigurationError):
            account_energy(scen.network, 0.0)
