"""Trace writing + offline analysis, cross-validated against the
online MetricsCollector (the ns-2 post-processing pipeline)."""

import pytest

from repro.scenario import ScenarioConfig, build_scenario
from repro.stats.tracefile import TraceAnalyzer, TraceWriter, analyze_trace

SMALL = dict(
    n_nodes=12,
    field_size=(700.0, 300.0),
    duration=40.0,
    n_connections=4,
    traffic_start_window=(0.0, 5.0),
    seed=8,
)


def run_traced(protocol="aodv", **kw):
    cfg = ScenarioConfig(protocol=protocol, **{**SMALL, **kw})
    scen = build_scenario(cfg)
    writer = TraceWriter(scen.network)
    for src in scen.sources:
        original = src.on_send

        def chained(pkt, _orig=original):
            _orig(pkt)
            writer.on_send(pkt)

        src.on_send = chained
    summary = scen.run()
    return summary, analyze_trace(writer.getvalue()), writer.getvalue()


class TestCrossValidation:
    def test_counts_match_collector(self):
        summary, offline, _ = run_traced("aodv")
        assert offline.data_sent == summary.data_sent
        assert offline.data_received == summary.data_received
        assert offline.control_transmissions == summary.routing_overhead_packets
        assert offline.control_bytes == summary.routing_overhead_bytes

    def test_derived_metrics_match(self):
        summary, offline, _ = run_traced("dsdv")
        assert offline.pdr == pytest.approx(summary.pdr)
        assert offline.avg_delay == pytest.approx(summary.avg_delay, abs=1e-9)
        assert offline.normalized_routing_load == pytest.approx(
            summary.normalized_routing_load
        )

    @pytest.mark.parametrize("protocol", ["dsr", "cbrp", "olsr"])
    def test_other_protocols_consistent(self, protocol):
        summary, offline, _ = run_traced(protocol)
        assert offline.data_received == summary.data_received
        assert offline.control_transmissions == summary.routing_overhead_packets


class TestTraceFormat:
    def test_lines_well_formed(self):
        _, _, text = run_traced("aodv")
        for line in text.splitlines():
            parts = line.split()
            assert parts[0] in ("s", "r")
            assert parts[3] in ("AGT", "RTR")
            float(parts[1])  # time parses

    def test_receive_lines_carry_provenance(self):
        _, _, text = run_traced("aodv")
        recv = [ln for ln in text.splitlines() if ln.startswith("r")]
        assert recv
        parts = recv[0].split()
        assert len(parts) == 10  # src, created, hops appended

    def test_analyzer_ignores_garbage(self):
        a = TraceAnalyzer()
        a.feed_line("")
        a.feed_line("# comment")
        a.feed_line("x 1.0 2")
        assert a.data_sent == 0

    def test_duplicate_receive_counted_once(self):
        a = TraceAnalyzer()
        a.feed_line("s 1.0 0 AGT 7 cbr 64")
        a.feed_line("r 2.0 1 AGT 7 cbr 64 0 1.0 2")
        a.feed_line("r 2.5 1 AGT 7 cbr 64 0 1.0 2")
        assert a.data_received == 1

    def test_empty_trace_metrics(self):
        a = analyze_trace("")
        assert a.pdr == 0.0
        assert a.avg_delay == 0.0
        assert a.normalized_routing_load == 0.0
