"""Determinism and independence of named RNG streams."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.rng import RngStreams


def test_same_seed_same_name_same_sequence():
    a = RngStreams(7).stream("mobility")
    b = RngStreams(7).stream("mobility")
    assert np.array_equal(a.random(32), b.random(32))


def test_different_names_differ():
    s = RngStreams(7)
    a = s.stream("mobility").random(32)
    b = s.stream("traffic").random(32)
    assert not np.array_equal(a, b)


def test_different_seeds_differ():
    a = RngStreams(1).stream("x").random(32)
    b = RngStreams(2).stream("x").random(32)
    assert not np.array_equal(a, b)


def test_stream_is_cached_and_continues():
    s = RngStreams(3)
    first = s.stream("m").random(4)
    second = s.stream("m").random(4)
    fresh = RngStreams(3).stream("m").random(8)
    assert np.array_equal(np.concatenate([first, second]), fresh)


def test_fresh_restarts_stream():
    s = RngStreams(3)
    a = s.fresh("m").random(8)
    b = s.fresh("m").random(8)
    assert np.array_equal(a, b)


def test_creation_order_does_not_matter():
    s1 = RngStreams(9)
    s1.stream("a")
    x1 = s1.stream("b").random(16)
    s2 = RngStreams(9)
    x2 = s2.stream("b").random(16)  # "a" never created
    assert np.array_equal(x1, x2)


def test_replicate_decorrelates():
    base = RngStreams(5)
    r0 = base.replicate(0).stream("m").random(32)
    r1 = base.replicate(1).stream("m").random(32)
    assert not np.array_equal(r0, r1)


def test_replicate_is_deterministic():
    a = RngStreams(5).replicate(3).stream("m").random(16)
    b = RngStreams(5).replicate(3).stream("m").random(16)
    assert np.array_equal(a, b)


def test_replicate_negative_raises():
    with pytest.raises(ValueError):
        RngStreams(5).replicate(-1)


def test_non_int_seed_raises():
    with pytest.raises(TypeError):
        RngStreams("abc")  # type: ignore[arg-type]
    with pytest.raises(TypeError):
        RngStreams(1.5)  # type: ignore[arg-type]


@given(st.integers(min_value=0, max_value=2**31 - 1), st.text(min_size=1, max_size=30))
def test_property_determinism(seed, name):
    a = RngStreams(seed).stream(name).integers(0, 1 << 30, size=8)
    b = RngStreams(seed).stream(name).integers(0, 1 << 30, size=8)
    assert np.array_equal(a, b)


@given(
    st.integers(min_value=0, max_value=2**31 - 1),
    st.text(min_size=1, max_size=20),
    st.text(min_size=1, max_size=20),
)
def test_property_distinct_names_independent(seed, n1, n2):
    if n1 == n2:
        return
    s = RngStreams(seed)
    a = s.fresh(n1).random(16)
    b = s.fresh(n2).random(16)
    assert not np.array_equal(a, b)
