"""Order-exactness of the coalescing timer wheel.

The wheel is a pure optimization: a mixed population of plain heap
events and wheel timers must fire in exactly the order the heap alone
would produce — global (time, seq) order, where every schedule call
(heap or wheel) claims the next seq from the shared queue counter.
The property test drives random interleavings, deadline collisions,
and cancellations through both representations and compares traces.
"""

from hypothesis import given, settings, strategies as st

from repro.core.events import EventQueue, TimerWheel
from repro.core.simulator import Simulator


def _drain(sim):
    """Run the simulator to exhaustion, ignoring the horizon."""
    sim.run(until=None)


# ----------------------------------------------------------------- unit


def test_single_timer_fires_at_deadline():
    sim = Simulator(seed=0)
    wheel = TimerWheel(sim._queue)
    fired = []
    wheel.schedule(1.5, lambda: fired.append(sim.now))
    _drain(sim)
    assert fired == [1.5]


def test_same_deadline_timers_share_one_sentinel():
    sim = Simulator(seed=0)
    wheel = TimerWheel(sim._queue)
    order = []
    for i in range(5):
        wheel.schedule(2.0, order.append, (i,))
    # One sentinel on the heap despite five timers.
    assert len(sim._queue) == 1
    assert len(wheel) == 5
    _drain(sim)
    assert order == [0, 1, 2, 3, 4]


def test_cancelled_timer_never_fires():
    sim = Simulator(seed=0)
    wheel = TimerWheel(sim._queue)
    order = []
    keep = wheel.schedule(1.0, order.append, ("keep",))
    drop = wheel.schedule(1.0, order.append, ("drop",))
    drop.cancel()
    assert not keep.cancelled and drop.cancelled
    _drain(sim)
    assert order == ["keep"]
    assert keep.fired and not drop.fired


def test_foreign_event_interleaves_between_bucket_timers():
    """A heap event scheduled between two same-deadline timers must
    fire between them: the sentinel yields and re-pushes itself."""
    sim = Simulator(seed=0)
    wheel = TimerWheel(sim._queue)
    order = []
    wheel.schedule(3.0, order.append, ("t0",))
    sim._queue.push(3.0, order.append, ("heap",))
    wheel.schedule(3.0, order.append, ("t1",))
    _drain(sim)
    assert order == ["t0", "heap", "t1"]


def test_callback_scheduling_into_future_bucket():
    """Timers scheduled from inside a firing timer land in later
    buckets and still fire in global order."""
    sim = Simulator(seed=0)
    wheel = TimerWheel(sim._queue)
    order = []

    def first():
        order.append("first")
        wheel.schedule(2.0, lambda: order.append("nested"))

    wheel.schedule(1.0, first)
    wheel.schedule(2.0, lambda: order.append("sibling"))
    _drain(sim)
    assert order == ["first", "sibling", "nested"]


# ------------------------------------------------------------- property


@given(
    ops=st.lists(
        st.tuples(
            st.booleans(),                       # via wheel?
            st.integers(min_value=1, max_value=6),   # deadline bucket
            st.booleans(),                       # cancel it?
        ),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=200, deadline=None)
def test_wheel_trace_matches_heap_trace(ops):
    """Property: wheel+heap mix ≡ all-heap, for any interleaving.

    Each op schedules callback *i* at a small quantized deadline
    (collisions are the point), via the wheel or the heap, and may
    cancel it immediately. The observable trace — (time, label) in
    firing order — must be identical to scheduling everything on the
    heap alone.
    """

    def run(use_wheel: bool):
        sim = Simulator(seed=0)
        wheel = TimerWheel(sim._queue)
        trace = []
        for i, (via_wheel, slot, cancelled) in enumerate(ops):
            t = slot * 0.25
            fn = lambda i=i: trace.append((sim.now, i))
            if use_wheel and via_wheel:
                handle = wheel.schedule(t, fn)
            else:
                handle = sim._queue.push(t, fn)
            if cancelled:
                handle.cancel()
        _drain(sim)
        return trace

    assert run(True) == run(False)
