"""Tracer behaviour: gating, filtering, sinks."""

from repro.core import NULL_TRACER, Tracer


def test_disabled_category_not_recorded():
    t = Tracer({"mac"})
    t.log(1.0, "route", "ignored")
    t.log(2.0, "mac", "kept")
    assert t.records == [(2.0, "mac", "kept")]


def test_all_categories():
    t = Tracer("all")
    t.log(1.0, "anything", 1, 2)
    assert t.enabled("whatever")
    assert t.records == [(1.0, "anything", 1, 2)]


def test_filter_by_category():
    t = Tracer({"a", "b"})
    t.log(1.0, "a", 1)
    t.log(2.0, "b", 2)
    t.log(3.0, "a", 3)
    assert t.filter("a") == [(1.0, "a", 1), (3.0, "a", 3)]


def test_sink_receives_records_instead_of_storing():
    seen = []
    t = Tracer({"x"}, sink=seen.append)
    t.log(0.5, "x", "payload")
    assert seen == [(0.5, "x", "payload")]
    assert t.records == []


def test_clear():
    t = Tracer({"x"})
    t.log(0.5, "x")
    t.clear()
    assert t.records == []


def test_null_tracer_is_noop():
    NULL_TRACER.log(1.0, "mac", "dropped")
    assert NULL_TRACER.records == []
    assert not NULL_TRACER.enabled("mac")
