"""Unit-conversion helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core import units


def test_dbm_watt_roundtrip_known_points():
    assert units.dbm_to_watt(0.0) == pytest.approx(1e-3)
    assert units.dbm_to_watt(30.0) == pytest.approx(1.0)
    assert units.watt_to_dbm(1.0) == pytest.approx(30.0)
    assert units.watt_to_dbm(1e-3) == pytest.approx(0.0)


def test_db_ratio_known_points():
    assert units.db_to_ratio(0.0) == pytest.approx(1.0)
    assert units.db_to_ratio(10.0) == pytest.approx(10.0)
    assert units.ratio_to_db(100.0) == pytest.approx(20.0)


def test_watt_to_dbm_rejects_nonpositive():
    with pytest.raises(ValueError):
        units.watt_to_dbm(0.0)
    with pytest.raises(ValueError):
        units.watt_to_dbm(-1.0)


def test_ratio_to_db_rejects_nonpositive():
    with pytest.raises(ValueError):
        units.ratio_to_db(0.0)


def test_bits_to_seconds():
    assert units.bits_to_seconds(2_000_000, 2e6) == pytest.approx(1.0)
    assert units.bytes_to_seconds(512, 2e6) == pytest.approx(512 * 8 / 2e6)


def test_bits_to_seconds_rejects_bad_rate():
    with pytest.raises(ValueError):
        units.bits_to_seconds(8, 0.0)


@given(st.floats(min_value=-100.0, max_value=60.0))
def test_dbm_roundtrip_property(dbm):
    assert units.watt_to_dbm(units.dbm_to_watt(dbm)) == pytest.approx(dbm)


@given(st.floats(min_value=-80.0, max_value=80.0))
def test_db_roundtrip_property(db):
    assert units.ratio_to_db(units.db_to_ratio(db)) == pytest.approx(db)


def test_speed_of_light_magnitude():
    assert math.isclose(units.SPEED_OF_LIGHT, 2.99792458e8)
