"""Simulator event-loop semantics."""

import pytest

from repro.core import SchedulingError, Simulator


def test_schedule_and_run_until():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    sim.run(until=1.5)
    assert fired == ["a"]
    assert sim.now == 1.5
    sim.run(until=3.0)
    assert fired == ["a", "b"]
    assert sim.now == 3.0


def test_run_drains_queue_without_until():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, fired.append, 1)
    sim.run()
    assert fired == [1]
    assert sim.now == 5.0


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(3.0, order.append, 3)
    sim.schedule(1.0, order.append, 1)
    sim.schedule(2.0, order.append, 2)
    sim.run()
    assert order == [1, 2, 3]


def test_simultaneous_events_fifo():
    sim = Simulator()
    order = []
    for i in range(5):
        sim.schedule(1.0, order.append, i)
    sim.run()
    assert order == [0, 1, 2, 3, 4]


def test_nested_scheduling_from_callback():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 3.0


def test_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SchedulingError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_past_raises():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SchedulingError):
        sim.schedule_at(0.5, lambda: None)


def test_cancel_pending_event():
    sim = Simulator()
    fired = []
    ev = sim.schedule(1.0, fired.append, "x")
    sim.cancel(ev)
    sim.run()
    assert fired == []
    assert sim.pending() == 0


def test_cancel_none_and_double_cancel_are_safe():
    sim = Simulator()
    sim.cancel(None)
    ev = sim.schedule(1.0, lambda: None)
    sim.cancel(ev)
    sim.cancel(ev)  # second cancel must not corrupt live count
    sim.run()
    assert sim.pending() == 0


def test_stop_halts_loop():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(2.0, sim.stop)
    sim.schedule(3.0, fired.append, 3)
    sim.run()
    assert fired == [1]
    assert sim.now == 2.0
    # Remaining event still pending and runnable.
    sim.run()
    assert fired == [1, 3]


def test_clock_does_not_rewind_when_until_already_passed():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    assert sim.now == 5.0
    sim.run(until=2.0)  # nothing to do; clock must not move backwards
    assert sim.now == 5.0


def test_events_processed_counter():
    sim = Simulator()
    for i in range(4):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_processed == 4


def test_reset():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    sim.schedule(9.0, lambda: None)
    sim.reset()
    assert sim.now == 0.0
    assert sim.pending() == 0
    assert sim.events_processed == 0


def test_reentrant_run_raises():
    sim = Simulator()
    err = {}

    def reenter():
        try:
            sim.run()
        except SchedulingError as e:
            err["e"] = e

    sim.schedule(1.0, reenter)
    sim.run()
    assert "e" in err
