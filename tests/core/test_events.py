"""Unit and property tests for the event queue."""

from hypothesis import given, strategies as st

from repro.core.events import Event, EventQueue
from repro.core.perfcounters import PerfCounters


def test_push_pop_single():
    q = EventQueue()
    ev = q.push(1.0, lambda: None)
    assert len(q) == 1
    popped = q.pop()
    assert popped is ev
    assert len(q) == 0
    assert q.pop() is None


def test_pop_orders_by_time():
    q = EventQueue()
    q.push(3.0, lambda: "c")
    q.push(1.0, lambda: "a")
    q.push(2.0, lambda: "b")
    times = [q.pop().time for _ in range(3)]
    assert times == [1.0, 2.0, 3.0]


def test_ties_fire_in_scheduling_order():
    q = EventQueue()
    first = q.push(5.0, lambda: None)
    second = q.push(5.0, lambda: None)
    assert q.pop() is first
    assert q.pop() is second


def test_cancelled_events_are_skipped():
    q = EventQueue()
    keep = q.push(1.0, lambda: None)
    drop = q.push(0.5, lambda: None)
    drop.cancel()
    assert len(q) == 1
    assert q.pop() is keep
    assert q.pop() is None


def test_direct_cancel_keeps_len_correct():
    """Event.cancel() called directly (not via Simulator.cancel) must
    keep the queue's live count accurate — the old API required a
    separate notify call and silently corrupted len() without it."""
    q = EventQueue()
    ev = q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    assert len(q) == 2
    ev.cancel()
    assert len(q) == 1


def test_double_cancel_is_idempotent():
    """Regression: cancelling twice must not double-decrement."""
    q = EventQueue()
    ev = q.push(1.0, lambda: None)
    keep = q.push(2.0, lambda: None)
    ev.cancel()
    ev.cancel()
    ev.cancel()
    assert len(q) == 1
    assert q.pop() is keep
    assert len(q) == 0


def test_cancel_after_fire_is_noop():
    q = EventQueue()
    ev = q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    fired = q.pop()
    assert fired is ev and ev.fired
    ev.cancel()  # stale handle: must not touch accounting
    assert not ev.cancelled
    assert len(q) == 1


def test_peek_time_skips_cancelled():
    q = EventQueue()
    drop = q.push(0.5, lambda: None)
    q.push(2.0, lambda: None)
    drop.cancel()
    assert q.peek_time() == 2.0


def test_peek_time_empty_is_none():
    assert EventQueue().peek_time() is None


def test_pop_due_respects_horizon():
    q = EventQueue()
    q.push(1.0, lambda: None)
    late = q.push(5.0, lambda: None)
    assert q.pop_due(2.0).time == 1.0
    assert q.pop_due(2.0) is None
    assert len(q) == 1  # the late event stays queued
    assert q.pop_due(None) is late


def test_clear_empties_queue():
    q = EventQueue()
    q.push(1.0, lambda: None)
    ev = q.push(2.0, lambda: None)
    q.clear()
    assert len(q) == 0
    assert q.pop() is None
    ev.cancel()  # detached by clear(); must not underflow
    assert len(q) == 0


def test_event_repr_and_cancel_flag():
    ev = Event(1.5, 0, lambda: None, ())
    assert not ev.cancelled
    ev.cancel()  # queue-less event: flag only
    assert ev.cancelled


def test_event_ordering_dunder():
    a = Event(1.0, 0, lambda: None, ())
    b = Event(1.0, 1, lambda: None, ())
    c = Event(0.5, 2, lambda: None, ())
    assert a < b
    assert c < a


def test_compaction_purges_dead_entries():
    """Mass-cancelling must shrink the physical heap, not just len()."""
    q = EventQueue()
    q.perf = PerfCounters()
    events = [q.push(1.0 + i * 1e-3, lambda: None) for i in range(1000)]
    for i, ev in enumerate(events):
        if i % 5 != 0:
            ev.cancel()
    assert len(q) == 200
    assert q.perf.heap_compactions >= 1
    assert len(q._heap) < 500  # dead fraction was purged
    fired = 0
    while q.pop() is not None:
        fired += 1
    assert fired == 200


def test_freelist_recycles_unreferenced_events():
    q = EventQueue()
    q.perf = PerfCounters()
    for _ in range(10):
        q.push(1.0, lambda: None).cancel()
    while q.pop() is not None:
        pass
    q.peek_time()  # drains remaining dead entries
    assert q.perf.events_pooled > 0
    # Reused objects must behave like fresh ones.
    ev = q.push(3.0, lambda: None)
    assert not ev.cancelled and not ev.fired
    assert q.pop() is ev


def test_freelist_never_steals_held_handles():
    q = EventQueue()
    held = q.push(1.0, lambda: None)
    held.cancel()
    assert q.pop() is None  # discards the dead entry
    fresh = q.push(2.0, lambda: None)
    assert fresh is not held  # we still hold `held`: must not be recycled


@given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), max_size=200))
def test_pop_sequence_is_sorted(times):
    q = EventQueue()
    for t in times:
        q.push(t, lambda: None)
    out = []
    while True:
        ev = q.pop()
        if ev is None:
            break
        out.append(ev.time)
    assert out == sorted(times)


@given(
    st.lists(
        st.tuples(st.floats(min_value=0, max_value=100, allow_nan=False), st.booleans()),
        max_size=100,
    )
)
def test_cancellation_never_loses_live_events(entries):
    """Live events all come out; cancelled ones never do."""
    q = EventQueue()
    live = []
    for t, cancel in entries:
        ev = q.push(t, lambda: None)
        if cancel:
            ev.cancel()
        else:
            live.append(ev)
    assert len(q) == len(live)
    popped = []
    while True:
        ev = q.pop()
        if ev is None:
            break
        popped.append(ev)
    assert set(id(e) for e in popped) == set(id(e) for e in live)
