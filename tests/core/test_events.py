"""Unit and property tests for the event queue."""

import pytest
from hypothesis import given, strategies as st

from repro.core.events import Event, EventQueue
from repro.core.errors import SchedulingError


def test_push_pop_single():
    q = EventQueue()
    ev = q.push(1.0, lambda: None)
    assert len(q) == 1
    popped = q.pop()
    assert popped is ev
    assert len(q) == 0
    assert q.pop() is None


def test_pop_orders_by_time():
    q = EventQueue()
    q.push(3.0, lambda: "c")
    q.push(1.0, lambda: "a")
    q.push(2.0, lambda: "b")
    times = [q.pop().time for _ in range(3)]
    assert times == [1.0, 2.0, 3.0]


def test_ties_fire_in_scheduling_order():
    q = EventQueue()
    first = q.push(5.0, lambda: None)
    second = q.push(5.0, lambda: None)
    assert q.pop() is first
    assert q.pop() is second


def test_cancelled_events_are_skipped():
    q = EventQueue()
    keep = q.push(1.0, lambda: None)
    drop = q.push(0.5, lambda: None)
    drop.cancel()
    q.notify_cancel()
    assert len(q) == 1
    assert q.pop() is keep
    assert q.pop() is None


def test_peek_time_skips_cancelled():
    q = EventQueue()
    drop = q.push(0.5, lambda: None)
    q.push(2.0, lambda: None)
    drop.cancel()
    q.notify_cancel()
    assert q.peek_time() == 2.0


def test_peek_time_empty_is_none():
    assert EventQueue().peek_time() is None


def test_notify_cancel_underflow_raises():
    q = EventQueue()
    with pytest.raises(SchedulingError):
        q.notify_cancel()


def test_clear_empties_queue():
    q = EventQueue()
    q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    q.clear()
    assert len(q) == 0
    assert q.pop() is None


def test_event_repr_and_cancel_flag():
    ev = Event(1.5, 0, lambda: None, ())
    assert not ev.cancelled
    ev.cancel()
    assert ev.cancelled


def test_event_ordering_dunder():
    a = Event(1.0, 0, lambda: None, ())
    b = Event(1.0, 1, lambda: None, ())
    c = Event(0.5, 2, lambda: None, ())
    assert a < b
    assert c < a


@given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), max_size=200))
def test_pop_sequence_is_sorted(times):
    q = EventQueue()
    for t in times:
        q.push(t, lambda: None)
    out = []
    while True:
        ev = q.pop()
        if ev is None:
            break
        out.append(ev.time)
    assert out == sorted(times)


@given(
    st.lists(
        st.tuples(st.floats(min_value=0, max_value=100, allow_nan=False), st.booleans()),
        max_size=100,
    )
)
def test_cancellation_never_loses_live_events(entries):
    """Live events all come out; cancelled ones never do."""
    q = EventQueue()
    live = []
    for t, cancel in entries:
        ev = q.push(t, lambda: None)
        if cancel:
            ev.cancel()
            q.notify_cancel()
        else:
            live.append(ev)
    assert len(q) == len(live)
    popped = []
    while True:
        ev = q.pop()
        if ev is None:
            break
        popped.append(ev)
    assert set(id(e) for e in popped) == set(id(e) for e in live)
