"""Registry-backed perf counters: ordering, registration, increments."""

import pytest

from repro.core.perfcounters import (
    PerfCounters,
    register_counter,
    registered_counters,
)

#: BENCH_kernel.json and the CLI tables rely on this exact prefix order.
KERNEL_ORDER = (
    "fanout_cache_hits",
    "fanout_cache_misses",
    "batch_position_evals",
    "scalar_position_evals",
    "segment_refreshes",
    "grid_rebuilds",
    "grid_incremental_updates",
    "heap_compactions",
    "events_pooled",
    "packets_pooled",
    "arrivals_pooled",
    "sweep_cache_hits",
    "sweep_cache_misses",
)


def test_kernel_counters_keep_historical_order():
    names = registered_counters()
    assert names[: len(KERNEL_ORDER)] == KERNEL_ORDER
    assert tuple(PerfCounters().as_dict())[: len(KERNEL_ORDER)] == KERNEL_ORDER


def test_new_counters_append_after_kernel_set():
    register_counter("zz_test_counter_append")
    names = registered_counters()
    assert names.index("zz_test_counter_append") >= len(KERNEL_ORDER)
    assert list(PerfCounters().as_dict())[-1] != "fanout_cache_hits"


def test_registration_is_idempotent():
    before = registered_counters()
    register_counter("fanout_cache_hits", "attempted re-registration")
    assert registered_counters() == before


def test_invalid_names_rejected():
    with pytest.raises(ValueError):
        register_counter("not a name")
    with pytest.raises(ValueError):
        register_counter("hyphen-ated")


def test_counters_initialise_to_zero_and_add():
    perf = PerfCounters()
    assert all(v == 0 for v in perf.as_dict().values())
    perf.fanout_cache_hits += 3
    perf.fanout_cache_misses += 1
    assert perf.as_dict()["fanout_cache_hits"] == 3
    assert perf.fanout_hit_ratio() == pytest.approx(0.75)


def test_incr_tolerates_late_registration():
    perf = PerfCounters()  # created before the registration below
    register_counter("zz_test_counter_late")
    assert perf.as_dict()["zz_test_counter_late"] == 0
    perf.incr("zz_test_counter_late")
    perf.incr("zz_test_counter_late", 4)
    assert perf.as_dict()["zz_test_counter_late"] == 5
