"""FaultPlanConfig: validation, round-tripping, and the off switch."""

import pytest

from repro.core.errors import ConfigurationError
from repro.faults.plan import FaultPlanConfig


class TestValidation:
    def test_defaults_are_a_noop_plan(self):
        plan = FaultPlanConfig()
        assert not plan.any_enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(churn_rate=-0.1),
            dict(mean_downtime=0.0),
            dict(mean_downtime=-1.0),
            dict(churn_start=-1.0),
            dict(churn_rate=0.1, churn_start=10.0, churn_stop=10.0),
            dict(energy_budget_j=-5.0),
            dict(energy_check_interval=0.0),
            dict(link_loss=-0.01),
            dict(link_loss=1.5),
            dict(blackouts=((5.0, 5.0),)),
            dict(blackouts=((-1.0, 5.0),)),
            dict(blackouts=((5.0, 2.0),)),
            dict(partitions=((5.0, 10.0),)),  # missing x_split
            dict(overload_windows=((1.0, 2.0, 3.0),)),  # extra element
            dict(overload_capacity=0),
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            FaultPlanConfig(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(churn_rate=0.01),
            dict(energy_budget_j=10.0),
            dict(link_loss=0.05),
            dict(blackouts=((1.0, 2.0),)),
            dict(partitions=((1.0, 2.0, 750.0),)),
            dict(overload_windows=((1.0, 2.0),)),
        ],
    )
    def test_each_axis_flips_any_enabled(self, kwargs):
        assert FaultPlanConfig(**kwargs).any_enabled


class TestRoundTrip:
    def test_dict_round_trip_preserves_plan(self):
        plan = FaultPlanConfig(
            churn_rate=0.02,
            mean_downtime=12.5,
            churn_start=10.0,
            churn_stop=200.0,
            energy_budget_j=50.0,
            link_loss=0.1,
            blackouts=((5.0, 7.0), (30.0, 31.0)),
            partitions=((40.0, 60.0, 750.0),),
            overload_windows=((80.0, 90.0),),
            overload_capacity=3,
        )
        data = plan.to_dict()
        # JSON-ready: every window is a plain list.
        assert data["blackouts"] == [[5.0, 7.0], [30.0, 31.0]]
        assert FaultPlanConfig.from_dict(data) == plan

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError, match="churn_rte"):
            FaultPlanConfig.from_dict({"churn_rte": 0.1})

    def test_with_copies(self):
        plan = FaultPlanConfig()
        assert plan.with_(link_loss=0.2).link_loss == 0.2
        assert plan.link_loss == 0.0
