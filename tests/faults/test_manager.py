"""FaultManager behaviour against real (small) scenarios."""

import pytest

from repro.core.errors import ConfigurationError, FaultInjectionError
from repro.faults.plan import FaultPlanConfig
from repro.scenario import ScenarioConfig, build_scenario, run_scenario

SMALL = dict(
    n_nodes=8,
    field_size=(500.0, 300.0),
    duration=20.0,
    n_connections=3,
    traffic_start_window=(0.0, 2.0),
)

CHURN = FaultPlanConfig(churn_rate=0.05, mean_downtime=5.0)


def faulted(seed=7, plan=CHURN, **over):
    kwargs = dict(SMALL)
    kwargs.update(over)
    return ScenarioConfig(seed=seed, faults=plan, **kwargs)


class TestConfigWiring:
    def test_none_plan_builds_no_manager(self):
        scn = build_scenario(ScenarioConfig(seed=1, **SMALL))
        assert scn.faults is None
        assert scn.network.channel.fault_hook is None

    def test_plan_builds_manager_and_hook(self):
        scn = build_scenario(faulted())
        assert scn.faults is not None
        assert scn.network.channel.fault_hook is scn.faults

    def test_dict_plan_is_coerced(self):
        cfg = ScenarioConfig(seed=1, faults={"link_loss": 0.1}, **SMALL)
        assert isinstance(cfg.faults, FaultPlanConfig)
        assert cfg.faults.link_loss == 0.1

    def test_bad_plan_type_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(seed=1, faults=42, **SMALL)

    def test_double_start_rejected(self):
        scn = build_scenario(faulted())
        scn.faults.start()
        with pytest.raises(FaultInjectionError):
            scn.faults.start()


class TestChurn:
    def test_seeded_churn_is_reproducible(self):
        a = run_scenario(faulted())
        b = run_scenario(faulted())
        assert a == b
        for fid, flow in a.flows.items():
            assert flow.delays == b.flows[fid].delays

    def test_churn_crashes_and_accounts(self):
        s = run_scenario(faulted())
        assert s.fault_crashes > 0
        assert s.fault_downtime > 0.0
        # Downtime is bounded by nodes x duration.
        assert s.fault_downtime <= SMALL["n_nodes"] * SMALL["duration"]

    def test_crash_semantics(self):
        scn = build_scenario(faulted())
        mgr = scn.faults
        node = scn.network.nodes[0]
        scn.network.start_routing()
        mgr._crash(0, False)
        assert mgr.node_down(0)
        assert node.radio.is_down
        assert not node.routing.alive
        assert len(node.mac.ifq) == 0
        # Idempotent: a second crash of a down node changes nothing.
        crashes = mgr.stats.crashes
        mgr._crash(0, False)
        assert mgr.stats.crashes == crashes
        # Recovery restores liveness and records the latency.
        scn.sim._now = 4.0
        mgr._recover(0)
        assert not mgr.node_down(0)
        assert not node.radio.is_down
        assert node.routing.alive
        assert mgr.stats.recovery_latencies == [4.0]

    def test_permanent_death_never_recovers(self):
        scn = build_scenario(faulted())
        mgr = scn.faults
        mgr._crash(0, True)
        mgr._recover(0)
        assert mgr.node_down(0)
        assert scn.network.nodes[0].radio.is_down

    def test_crash_of_unknown_node_rejected(self):
        scn = build_scenario(faulted())
        with pytest.raises(FaultInjectionError):
            scn.faults._crash(99, False)

    def test_churn_window_respected(self):
        plan = CHURN.with_(churn_start=5.0, churn_stop=10.0, mean_downtime=1.0)
        cfg = faulted(plan=plan).with_(trace=("fault",))
        scn = build_scenario(cfg)
        summary = scn.run()
        crash_times = [
            rec[0] for rec in scn.sim.tracer.filter("fault") if rec[2] == "crash"
        ]
        assert summary.fault_crashes == len(crash_times)
        assert all(5.0 <= t < 10.0 for t in crash_times)


class TestLinkImpairment:
    def test_blackout_silences_the_channel(self):
        # A blackout covering the whole run delivers nothing.
        plan = FaultPlanConfig(blackouts=((0.0, SMALL["duration"]),))
        s = run_scenario(faulted(plan=plan))
        assert s.data_received == 0
        assert s.fault_packets_lost > 0

    def test_link_loss_degrades_delivery(self):
        clean = run_scenario(ScenarioConfig(seed=7, **SMALL))
        lossy = run_scenario(faulted(plan=FaultPlanConfig(link_loss=0.3)))
        assert lossy.pdr < clean.pdr
        assert lossy.fault_packets_lost > 0

    def test_full_loss_equals_blackout_delivery(self):
        s = run_scenario(faulted(plan=FaultPlanConfig(link_loss=1.0)))
        assert s.data_received == 0

    def test_partition_cuts_crossing_links(self):
        # Split the field down the middle for the entire run: traffic
        # whose endpoints land on opposite sides cannot be delivered.
        plan = FaultPlanConfig(
            partitions=((0.0, SMALL["duration"], SMALL["field_size"][0] / 2),)
        )
        scn = build_scenario(faulted(plan=plan, mobility="static"))
        summary = scn.run()
        assert scn.faults.stats.partition_drops > 0
        positions = scn.network.mobility.positions(0.0)
        split = SMALL["field_size"][0] / 2
        for flow in summary.flows.values():
            src_side = positions[flow.src, 0] < split
            dst_side = positions[flow.dst, 0] < split
            if src_side != dst_side:
                assert flow.received == 0

    def test_filter_preserves_target_order(self):
        scn = build_scenario(faulted(plan=FaultPlanConfig(link_loss=0.5)))
        mgr = scn.faults

        class _R:  # minimal stand-in for a radio entry
            def __init__(self, nid):
                self.node_id = nid

        targets = [(_R(i), 1.0) for i in range(1, 8)]
        out = mgr.filter_targets(0, targets, 1.0)
        kept = [e[0].node_id for e in out]
        assert kept == sorted(kept)  # order preserved, only thinned


class TestEnergyAndOverload:
    def test_energy_budget_kills_permanently(self):
        # Tiny budget: idle draw alone exceeds it within a second.
        plan = FaultPlanConfig(energy_budget_j=0.5, energy_check_interval=0.5)
        s = run_scenario(faulted(plan=plan))
        assert s.fault_crashes == SMALL["n_nodes"]
        # Permanent deaths never recover.
        assert s.fault_recovery_latency == 0.0

    def test_overload_clamps_and_restores(self):
        plan = FaultPlanConfig(overload_windows=((2.0, 4.0),), overload_capacity=1)
        scn = build_scenario(faulted(plan=plan))
        scn.faults.start()
        caps = [n.mac.ifq.capacity for n in scn.network.nodes]
        scn.sim.run(until=3.0)
        assert all(n.mac.ifq.capacity == 1 for n in scn.network.nodes)
        scn.sim.run(until=5.0)
        assert [n.mac.ifq.capacity for n in scn.network.nodes] == caps


class TestSummaryAccounting:
    def test_no_fault_summary_has_zero_fault_fields(self):
        s = run_scenario(ScenarioConfig(seed=7, **SMALL))
        assert s.fault_crashes == 0
        assert s.fault_downtime == 0.0
        assert s.fault_recovery_latency == 0.0
        assert s.fault_packets_lost == 0

    def test_io_round_trip_with_faults(self):
        from repro.scenario.io import config_from_dict, config_to_dict

        cfg = faulted(plan=CHURN.with_(link_loss=0.05))
        data = config_to_dict(cfg)
        assert data["faults"]["link_loss"] == 0.05
        assert config_from_dict(data) == cfg

    def test_io_round_trip_without_faults(self):
        from repro.scenario.io import config_from_dict, config_to_dict

        cfg = ScenarioConfig(seed=7, **SMALL)
        data = config_to_dict(cfg)
        assert data["faults"] is None
        assert config_from_dict(data) == cfg
