"""Command-line interface."""

import pytest

from repro.cli import build_parser, main

FAST = [
    "--nodes", "10", "--field", "600", "300", "--duration", "20",
    "--sources", "3", "--seed", "2",
]


def test_run_command(capsys):
    assert main(["run", "--protocol", "aodv", *FAST]) == 0
    out = capsys.readouterr().out
    assert "AODV results" in out
    assert "packet delivery ratio" in out


def test_compare_command(capsys):
    assert main(["compare", "--protocols", "dsdv", "aodv", *FAST]) == 0
    out = capsys.readouterr().out
    assert "dsdv" in out and "aodv" in out
    assert "normalized routing load" in out


def test_sweep_command(capsys):
    assert main([
        "sweep", "--param", "pause_time", "--values", "0", "20",
        "--protocols", "aodv", "--metric", "pdr", "--processes", "1", *FAST,
    ]) == 0
    out = capsys.readouterr().out
    assert "pdr vs pause_time" in out


def test_sweep_integer_param(capsys):
    assert main([
        "sweep", "--param", "n_nodes", "--values", "8", "12",
        "--protocols", "aodv", "--processes", "1", *FAST,
    ]) == 0
    assert "n_nodes" in capsys.readouterr().out


def test_protocols_command(capsys):
    assert main(["protocols"]) == 0
    out = capsys.readouterr().out
    for name in ("dsdv", "dsr", "aodv", "paodv", "cbrp", "olsr"):
        assert name in out


def test_unknown_protocol_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["run", "--protocol", "rip"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_no_rtscts_flag(capsys):
    assert main(["run", "--protocol", "aodv", "--no-rtscts", *FAST]) == 0


def test_save_and_reload_config(tmp_path, capsys):
    cfg_path = tmp_path / "scn.json"
    assert main(["run", "--protocol", "aodv", "--save-config", str(cfg_path), *FAST]) == 0
    assert cfg_path.exists()
    assert main(["run", "--protocol", "dsdv", "--config", str(cfg_path)]) == 0
    out = capsys.readouterr().out
    assert "DSDV results" in out


def test_sweep_csv_export(tmp_path, capsys):
    csv_path = tmp_path / "sweep.csv"
    assert main([
        "sweep", "--param", "pause_time", "--values", "0",
        "--protocols", "aodv", "--processes", "1", "--csv", str(csv_path), *FAST,
    ]) == 0
    assert csv_path.exists()
    assert "pause_time" in csv_path.read_text().splitlines()[0]
