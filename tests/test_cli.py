"""Command-line interface."""

import pytest

from repro.cli import build_parser, main

FAST = [
    "--nodes", "10", "--field", "600", "300", "--duration", "20",
    "--sources", "3", "--seed", "2",
]


def test_run_command(capsys):
    assert main(["run", "--protocol", "aodv", *FAST]) == 0
    out = capsys.readouterr().out
    assert "AODV results" in out
    assert "packet delivery ratio" in out


def test_compare_command(capsys):
    assert main(["compare", "--protocols", "dsdv", "aodv", *FAST]) == 0
    out = capsys.readouterr().out
    assert "dsdv" in out and "aodv" in out
    assert "normalized routing load" in out


def test_sweep_command(capsys):
    assert main([
        "sweep", "--param", "pause_time", "--values", "0", "20",
        "--protocols", "aodv", "--metric", "pdr", "--processes", "1", *FAST,
    ]) == 0
    out = capsys.readouterr().out
    assert "pdr vs pause_time" in out


def test_sweep_integer_param(capsys):
    assert main([
        "sweep", "--param", "n_nodes", "--values", "8", "12",
        "--protocols", "aodv", "--processes", "1", *FAST,
    ]) == 0
    assert "n_nodes" in capsys.readouterr().out


def test_protocols_command(capsys):
    assert main(["protocols"]) == 0
    out = capsys.readouterr().out
    for name in ("dsdv", "dsr", "aodv", "paodv", "cbrp", "olsr"):
        assert name in out


def test_unknown_protocol_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["run", "--protocol", "rip"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_no_rtscts_flag(capsys):
    assert main(["run", "--protocol", "aodv", "--no-rtscts", *FAST]) == 0


def test_save_and_reload_config(tmp_path, capsys):
    cfg_path = tmp_path / "scn.json"
    assert main(["run", "--protocol", "aodv", "--save-config", str(cfg_path), *FAST]) == 0
    assert cfg_path.exists()
    assert main(["run", "--protocol", "dsdv", "--config", str(cfg_path)]) == 0
    out = capsys.readouterr().out
    assert "DSDV results" in out


def test_sweep_csv_export(tmp_path, capsys):
    csv_path = tmp_path / "sweep.csv"
    assert main([
        "sweep", "--param", "pause_time", "--values", "0",
        "--protocols", "aodv", "--processes", "1", "--csv", str(csv_path), *FAST,
    ]) == 0
    assert csv_path.exists()
    assert "pause_time" in csv_path.read_text().splitlines()[0]


def test_run_profile_flag(capsys):
    assert main(["run", "--protocol", "aodv", "--profile", *FAST]) == 0
    out = capsys.readouterr().out
    assert "Profile (wall time)" in out
    assert "event-loop" in out


def test_run_profile_out_and_obs_report(tmp_path, capsys):
    prof = tmp_path / "profile.json"
    assert main([
        "run", "--protocol", "aodv", "--profile-out", str(prof), *FAST,
    ]) == 0
    assert prof.exists()
    capsys.readouterr()
    assert main(["obs", "report", str(prof)]) == 0
    out = capsys.readouterr().out
    assert "event-loop" in out and "self %" in out


def test_run_telemetry_export(tmp_path, capsys):
    from repro.obs.telemetry import load_telemetry_jsonl

    tele = tmp_path / "tele.jsonl"
    assert main([
        "run", "--protocol", "aodv", "--telemetry", str(tele),
        "--telemetry-interval", "5", *FAST,
    ]) == 0
    samples = load_telemetry_jsonl(tele)  # validates every line
    assert len(samples) == 4  # duration 20 at interval 5
    assert "telemetry sample(s)" in capsys.readouterr().out


def test_sweep_progress_and_manifest(tmp_path, capsys, monkeypatch):
    # The manifest is published next to the journal, so this test opts
    # back into the cache (hermetic: cwd is a tmp dir).
    monkeypatch.chdir(tmp_path)
    monkeypatch.setenv("MANETSIM_NO_SWEEP_CACHE", "0")
    assert main([
        "sweep", "--param", "pause_time", "--values", "0",
        "--protocols", "aodv", "--processes", "1", "--progress", *FAST,
    ]) == 0
    captured = capsys.readouterr()
    assert "sweep 1/1" in captured.err
    assert "[manifest: " in captured.out
    capsys.readouterr()
    manifest = tmp_path / ".manetsim-cache" / "manifest.json"
    assert manifest.exists()
    assert main(["obs", "report", str(manifest)]) == 0
    assert "jobs total" in capsys.readouterr().out


def test_sweep_perf_csv_columns(tmp_path, capsys):
    csv_path = tmp_path / "sweep.csv"
    assert main([
        "sweep", "--param", "pause_time", "--values", "0",
        "--protocols", "aodv", "--processes", "1", "--perf",
        "--csv", str(csv_path), *FAST,
    ]) == 0
    assert "perf_fanout_cache_hits" in csv_path.read_text().splitlines()[0]


def test_obs_report_rejects_garbage(tmp_path, capsys):
    bogus = tmp_path / "bogus.json"
    bogus.write_text('{"hello": 1}')
    assert main(["obs", "report", str(bogus)]) == 1
    assert "neither" in capsys.readouterr().err


def test_run_flight_prints_conservation(capsys):
    assert main(["run", "--protocol", "aodv", "--flight", *FAST]) == 0
    out = capsys.readouterr().out
    assert "Packet conservation" in out
    assert "conserved" in out
    assert "unaccounted" in out


def test_run_flight_artifacts_and_obs_trace(tmp_path, capsys):
    import json

    trace = tmp_path / "flight.jsonl"
    report = tmp_path / "flight.json"
    assert main([
        "run", "--protocol", "aodv",
        "--flight-trace", str(trace), "--flight-report", str(report),
        *FAST,
    ]) == 0
    capsys.readouterr()
    # The report is the small conservation dict, events stripped.
    rep = json.loads(report.read_text())
    assert rep["conserved"] is True
    assert "events" not in rep

    chrome = tmp_path / "chrome.json"
    assert main(["obs", "trace", str(trace), "-o", str(chrome)]) == 0
    out = capsys.readouterr().out
    assert "event(s)" in out and "chrome://tracing" in out
    doc = json.loads(chrome.read_text())
    assert doc["traceEvents"]
    assert all(e["cat"] == "flight" for e in doc["traceEvents"])


def test_obs_why_on_flight_jsonl(tmp_path, capsys):
    trace = tmp_path / "flight.jsonl"
    assert main([
        "run", "--protocol", "aodv", "--flight-trace", str(trace), *FAST,
    ]) == 0
    capsys.readouterr()
    assert main(["obs", "why", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "offered" in out and "delivered" in out
    assert "conserved" in out
    # The identity is spelled out for the reader.
    assert "offered ==" in out and "in flight" in out


def test_obs_why_json_mode_on_report(tmp_path, capsys):
    import json

    report = tmp_path / "flight.json"
    assert main([
        "run", "--protocol", "aodv", "--flight-report", str(report), *FAST,
    ]) == 0
    capsys.readouterr()
    assert main(["obs", "why", "--json", str(report)]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["conserved"] is True
    assert doc["unaccounted"] == 0


def test_obs_why_reruns_a_scenario_config(tmp_path, capsys):
    # Pointing `why` at a scenario config re-runs it with the recorder
    # on — the one-command answer to "where did my packets go".
    cfg_path = tmp_path / "scn.json"
    assert main([
        "run", "--protocol", "aodv", "--save-config", str(cfg_path), *FAST,
    ]) == 0
    capsys.readouterr()
    assert main(["obs", "why", str(cfg_path)]) == 0
    out = capsys.readouterr().out
    assert "conserved" in out and "| yes" in out


def test_obs_why_rejects_garbage(tmp_path, capsys):
    bogus = tmp_path / "bogus.json"
    bogus.write_text('{"hello": 1}')
    assert main(["obs", "why", str(bogus)]) == 1


def test_sweep_drops_csv_columns(tmp_path):
    csv_path = tmp_path / "sweep.csv"
    assert main([
        "sweep", "--param", "pause_time", "--values", "0",
        "--protocols", "aodv", "--processes", "1", "--drops",
        "--csv", str(csv_path), *FAST,
    ]) == 0
    lines = csv_path.read_text().splitlines()
    # drop_<reason> columns come from the always-on counter tier; this
    # contended 10-node scenario always records at least one reason.
    assert "drop_" in lines[0]
