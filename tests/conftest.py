"""Shared test environment guards."""

import pytest


@pytest.fixture(autouse=True)
def _isolated_sweep_cache(monkeypatch):
    # Keep sweep runs hermetic: no cross-test cache hits, and nothing
    # written into the repo tree. Tests that exercise the cache opt in
    # with run_sweep(cache=True, cache_dir=tmp_path).
    monkeypatch.setenv("MANETSIM_NO_SWEEP_CACHE", "1")
