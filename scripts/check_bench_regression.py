#!/usr/bin/env python
"""Fail when BENCH_kernel.json records a perf regression.

Reads a freshly generated ``BENCH_kernel.json`` (emitted by the
benchmark session hook in ``benchmarks/conftest.py``) and exits
non-zero if any benchmark's ``speedup_vs_seed`` fell below the floor.

The strict reading of the gate is "no bench slower than its recorded
baseline" (floor 1.0).  In practice the event-loop benches vary by
10-15% run-to-run on a loaded single-core runner even for untouched
code, so the default floor is 0.90: real regressions (a hot path made
>10% slower) still fail, while scheduler noise does not.  Benches in
the [floor, 1.0) band are printed as warnings so a slow drift is still
visible in the job log.

The gate also covers the engine's cache **hit ratios** when the bench
file records them (``hit_ratios``, emitted by the bench session hook):
a cache whose hit ratio dropped more than ``--ratio-drop`` (default
20%) below its recorded baseline fails the gate even if wall time is
still inside the noise floor — ratios decay before timings do, and
they are deterministic (fixed-seed probe scenario), so no noise
allowance is needed.  Alongside the position/fan-out cache ratios this
includes ``phy_batch``, the fraction of PHY arrivals the batched
engine resolved (vs per-pair fallbacks): a drop means stacks silently
stopped qualifying for batching (e.g. a MAC lost ``batch_safe``),
which costs wall time long before the timing gate notices.  The DCF
contention arena contributes two more: ``mac_edge_suppression`` (the
fraction of medium edges proven no-ops and never dispatched into a
MAC) and ``mac_timer_coalescing`` (the fraction of DCF timers the
shared wheel folded into an existing same-deadline heap sentinel).
Either decaying means the arena is silently degenerating to per-node
dispatch.

With ``--manifest PATH`` the script instead validates a sweep
``manifest.json`` (local or fabric run) against the executor's
accounting invariants: ``jobs_total == jobs_executed +
jobs_from_cache``, ``jobs_resumed <= jobs_from_cache``, ``jobs_failed
== len(failures)``, and — when the manifest records a fabric section —
non-negative fleet counters with ``results_from_peer_cache <=
jobs_from_cache``.  These must hold under lease reassignment and
worker death; a violation means a sweep point was double-counted or
silently lost, which is exactly what the fabric exists to prevent.

With ``--conservation PATH`` the script validates a flight-recorder
report (``repro run --flight-report`` or ``repro obs why --json``)
against the packet-conservation identity: ``offered == delivered +
Σ drops_by_reason + in_flight`` with ``unaccounted == 0`` and the
report's own ``conserved`` verdict true.  An unbalanced ledger in CI
means a code path started discarding data packets without telling the
recorder — a taxonomy leak the drop-site meta-test should have caught.

Usage::

    python scripts/check_bench_regression.py [--floor 0.90]
        [--ratio-drop 0.20] [path]
    python scripts/check_bench_regression.py --manifest runs/manifest.json
    python scripts/check_bench_regression.py --conservation flight.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def check_ratios(data: dict, max_drop: float) -> list:
    """Hit-ratio regressions: (name, ratio, baseline) triples."""
    failures = []
    for name, entry in sorted(data.get("hit_ratios", {}).items()):
        ratio = entry.get("ratio")
        baseline = entry.get("baseline")
        if ratio is None or not baseline:
            print(f"  skip  hit-ratio {name}: no baseline recorded")
            continue
        drop = 1.0 - ratio / baseline
        status = "FAIL" if drop > max_drop else "ok"
        if status == "FAIL":
            failures.append((name, ratio, baseline))
        print(
            f"  {status:<5} hit-ratio {name}: {ratio:.4f} "
            f"(baseline {baseline:.4f}, drop {max(drop, 0.0):.1%})"
        )
    return failures


def check(path: pathlib.Path, floor: float, ratio_drop: float) -> int:
    data = json.loads(path.read_text())
    benchmarks = data.get("benchmarks", {})
    if not benchmarks:
        print(f"error: no benchmarks recorded in {path}", file=sys.stderr)
        return 2

    failures = []
    warnings = []
    for name, entry in sorted(benchmarks.items()):
        speedup = entry.get("speedup_vs_seed")
        if speedup is None:
            print(f"  skip  {name}: no baseline recorded")
            continue
        status = "ok"
        if speedup < floor:
            failures.append((name, speedup))
            status = "FAIL"
        elif speedup < 1.0:
            warnings.append((name, speedup))
            status = "warn"
        print(f"  {status:<5} {name}: {speedup:.2f}x vs baseline")

    ratio_failures = check_ratios(data, ratio_drop)

    for name, speedup in warnings:
        print(
            f"warning: {name} at {speedup:.2f}x — below 1.0 but within "
            f"the {floor:.2f} noise floor"
        )
    if failures or ratio_failures:
        for name, speedup in failures:
            print(
                f"REGRESSION: {name} at {speedup:.2f}x "
                f"(floor {floor:.2f})",
                file=sys.stderr,
            )
        for name, ratio, baseline in ratio_failures:
            print(
                f"REGRESSION: {name} hit ratio at {ratio:.4f}, more than "
                f"{ratio_drop:.0%} below its baseline {baseline:.4f}",
                file=sys.stderr,
            )
        return 1
    print(f"all {len(benchmarks)} benchmarks at or above the floor")
    return 0


def check_manifest(path: pathlib.Path) -> int:
    """Validate a sweep manifest's accounting invariants."""
    manifest = json.loads(path.read_text())
    problems = []

    def require(cond: bool, label: str) -> None:
        print(f"  {'ok' if cond else 'FAIL':<5} {label}")
        if not cond:
            problems.append(label)

    total = manifest.get("jobs_total", -1)
    executed = manifest.get("jobs_executed", -1)
    cached = manifest.get("jobs_from_cache", -1)
    resumed = manifest.get("jobs_resumed", -1)
    require(
        total == executed + cached,
        f"jobs_total == jobs_executed + jobs_from_cache "
        f"({total} == {executed} + {cached})",
    )
    require(
        0 <= resumed <= cached,
        f"0 <= jobs_resumed <= jobs_from_cache ({resumed} <= {cached})",
    )
    require(
        manifest.get("jobs_failed", -1) == len(manifest.get("failures", ())),
        f"jobs_failed matches the failure list "
        f"({manifest.get('jobs_failed')} == "
        f"{len(manifest.get('failures', ()))})",
    )

    fabric = manifest.get("fabric")
    if fabric:
        counter_names = (
            "points_executed", "points_failed", "results_from_peer_cache",
            "leases_reassigned", "heartbeats_missed", "fallback_points",
        )
        for name in counter_names:
            value = fabric.get(name, -1)
            require(
                isinstance(value, int) and value >= 0,
                f"fabric.{name} present and non-negative ({value})",
            )
        require(
            fabric.get("results_from_peer_cache", 0) <= cached,
            f"fabric.results_from_peer_cache <= jobs_from_cache "
            f"({fabric.get('results_from_peer_cache', 0)} <= {cached})",
        )
        if fabric.get("connected"):
            require(
                fabric.get("points_executed", 0)
                + fabric.get("points_failed", 0)
                + fabric.get("results_from_peer_cache", 0)
                + fabric.get("fallback_points", 0)
                == fabric.get("points_sent", -1),
                "fabric points reconcile (executed + failed + peer-cache "
                "+ fallback == sent)",
            )
    else:
        print("  skip  no fabric section (local-pool run)")

    if problems:
        for label in problems:
            print(f"MANIFEST INVARIANT VIOLATED: {label}", file=sys.stderr)
        return 1
    print("manifest invariants hold")
    return 0


def check_conservation(path: pathlib.Path) -> int:
    """Validate a flight report's packet-conservation identity."""
    report = json.loads(path.read_text())
    problems = []

    def require(cond: bool, label: str) -> None:
        print(f"  {'ok' if cond else 'FAIL':<5} {label}")
        if not cond:
            problems.append(label)

    offered = report.get("offered", -1)
    delivered = report.get("delivered", -1)
    in_flight = report.get("in_flight", -1)
    unaccounted = report.get("unaccounted", -1)
    drops = report.get("drops_by_reason") or {}
    dropped = sum(drops.values())

    require(
        isinstance(offered, int) and offered > 0,
        f"offered load recorded ({offered} packets)",
    )
    require(
        all(isinstance(v, int) and v >= 0 for v in drops.values()),
        f"drop buckets are non-negative counts ({len(drops)} reason(s))",
    )
    require(
        in_flight >= 0 and delivered >= 0,
        f"delivered/in-flight non-negative ({delivered} / {in_flight})",
    )
    require(
        unaccounted == 0,
        f"unaccounted == 0 ({unaccounted})",
    )
    require(
        offered == delivered + dropped + in_flight,
        f"offered == delivered + dropped + in_flight "
        f"({offered} == {delivered} + {dropped} + {in_flight})",
    )
    require(
        report.get("conserved") is True,
        f"report's own verdict is conserved ({report.get('conserved')})",
    )

    if problems:
        for label in problems:
            print(f"CONSERVATION VIOLATED: {label}", file=sys.stderr)
        return 1
    print("packet conservation holds")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "path",
        nargs="?",
        default="BENCH_kernel.json",
        type=pathlib.Path,
        help="bench results file (default: BENCH_kernel.json)",
    )
    parser.add_argument(
        "--floor",
        type=float,
        default=0.90,
        help="minimum acceptable speedup_vs_seed (default: 0.90)",
    )
    parser.add_argument(
        "--ratio-drop",
        type=float,
        default=0.20,
        help="maximum tolerated relative drop in any recorded cache "
             "hit ratio (default: 0.20 = 20%%)",
    )
    parser.add_argument(
        "--manifest",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help="validate a sweep manifest.json's accounting invariants "
             "instead of checking bench timings",
    )
    parser.add_argument(
        "--conservation",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help="validate a flight report JSON's packet-conservation "
             "identity instead of checking bench timings",
    )
    args = parser.parse_args(argv)
    if args.conservation is not None:
        if not args.conservation.exists():
            print(f"error: {args.conservation} not found", file=sys.stderr)
            return 2
        return check_conservation(args.conservation)
    if args.manifest is not None:
        if not args.manifest.exists():
            print(f"error: {args.manifest} not found", file=sys.stderr)
            return 2
        return check_manifest(args.manifest)
    if not args.path.exists():
        print(f"error: {args.path} not found", file=sys.stderr)
        return 2
    return check(args.path, args.floor, args.ratio_drop)


if __name__ == "__main__":
    sys.exit(main())
