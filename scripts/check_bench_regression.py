#!/usr/bin/env python
"""Fail when BENCH_kernel.json records a perf regression.

Reads a freshly generated ``BENCH_kernel.json`` (emitted by the
benchmark session hook in ``benchmarks/conftest.py``) and exits
non-zero if any benchmark's ``speedup_vs_seed`` fell below the floor.

The strict reading of the gate is "no bench slower than its recorded
baseline" (floor 1.0).  In practice the event-loop benches vary by
10-15% run-to-run on a loaded single-core runner even for untouched
code, so the default floor is 0.90: real regressions (a hot path made
>10% slower) still fail, while scheduler noise does not.  Benches in
the [floor, 1.0) band are printed as warnings so a slow drift is still
visible in the job log.

The gate also covers the engine's cache **hit ratios** when the bench
file records them (``hit_ratios``, emitted by the bench session hook):
a cache whose hit ratio dropped more than ``--ratio-drop`` (default
20%) below its recorded baseline fails the gate even if wall time is
still inside the noise floor — ratios decay before timings do, and
they are deterministic (fixed-seed probe scenario), so no noise
allowance is needed.  Alongside the position/fan-out cache ratios this
includes ``phy_batch``, the fraction of PHY arrivals the batched
engine resolved (vs per-pair fallbacks): a drop means stacks silently
stopped qualifying for batching (e.g. a MAC lost ``batch_safe``),
which costs wall time long before the timing gate notices.  The DCF
contention arena contributes two more: ``mac_edge_suppression`` (the
fraction of medium edges proven no-ops and never dispatched into a
MAC) and ``mac_timer_coalescing`` (the fraction of DCF timers the
shared wheel folded into an existing same-deadline heap sentinel).
Either decaying means the arena is silently degenerating to per-node
dispatch.

Usage::

    python scripts/check_bench_regression.py [--floor 0.90]
        [--ratio-drop 0.20] [path]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def check_ratios(data: dict, max_drop: float) -> list:
    """Hit-ratio regressions: (name, ratio, baseline) triples."""
    failures = []
    for name, entry in sorted(data.get("hit_ratios", {}).items()):
        ratio = entry.get("ratio")
        baseline = entry.get("baseline")
        if ratio is None or not baseline:
            print(f"  skip  hit-ratio {name}: no baseline recorded")
            continue
        drop = 1.0 - ratio / baseline
        status = "FAIL" if drop > max_drop else "ok"
        if status == "FAIL":
            failures.append((name, ratio, baseline))
        print(
            f"  {status:<5} hit-ratio {name}: {ratio:.4f} "
            f"(baseline {baseline:.4f}, drop {max(drop, 0.0):.1%})"
        )
    return failures


def check(path: pathlib.Path, floor: float, ratio_drop: float) -> int:
    data = json.loads(path.read_text())
    benchmarks = data.get("benchmarks", {})
    if not benchmarks:
        print(f"error: no benchmarks recorded in {path}", file=sys.stderr)
        return 2

    failures = []
    warnings = []
    for name, entry in sorted(benchmarks.items()):
        speedup = entry.get("speedup_vs_seed")
        if speedup is None:
            print(f"  skip  {name}: no baseline recorded")
            continue
        status = "ok"
        if speedup < floor:
            failures.append((name, speedup))
            status = "FAIL"
        elif speedup < 1.0:
            warnings.append((name, speedup))
            status = "warn"
        print(f"  {status:<5} {name}: {speedup:.2f}x vs baseline")

    ratio_failures = check_ratios(data, ratio_drop)

    for name, speedup in warnings:
        print(
            f"warning: {name} at {speedup:.2f}x — below 1.0 but within "
            f"the {floor:.2f} noise floor"
        )
    if failures or ratio_failures:
        for name, speedup in failures:
            print(
                f"REGRESSION: {name} at {speedup:.2f}x "
                f"(floor {floor:.2f})",
                file=sys.stderr,
            )
        for name, ratio, baseline in ratio_failures:
            print(
                f"REGRESSION: {name} hit ratio at {ratio:.4f}, more than "
                f"{ratio_drop:.0%} below its baseline {baseline:.4f}",
                file=sys.stderr,
            )
        return 1
    print(f"all {len(benchmarks)} benchmarks at or above the floor")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "path",
        nargs="?",
        default="BENCH_kernel.json",
        type=pathlib.Path,
        help="bench results file (default: BENCH_kernel.json)",
    )
    parser.add_argument(
        "--floor",
        type=float,
        default=0.90,
        help="minimum acceptable speedup_vs_seed (default: 0.90)",
    )
    parser.add_argument(
        "--ratio-drop",
        type=float,
        default=0.20,
        help="maximum tolerated relative drop in any recorded cache "
             "hit ratio (default: 0.20 = 20%%)",
    )
    args = parser.parse_args(argv)
    if not args.path.exists():
        print(f"error: {args.path} not found", file=sys.stderr)
        return 2
    return check(args.path, args.floor, args.ratio_drop)


if __name__ == "__main__":
    sys.exit(main())
