#!/usr/bin/env python
"""CI smoke drill for the sweep fabric: broker + 2 workers + 1 murder.

Orchestrates the acceptance scenario end to end, the way CI sees it:

1. start a broker (in-process, background thread);
2. spawn two ``repro fabric-worker`` subprocesses with a chaos sleep;
3. run a small sweep through ``--broker`` (fresh client cache);
4. SIGKILL one worker as soon as the broker journal shows it holding a
   lease (named point ``mid-lease``);
5. assert: the sweep completes with zero lost points, the merged grid
   is bit-identical to a clean local-pool run, at least one lease was
   reassigned, and the manifest passes the accounting gate
   (``check_bench_regression.py --manifest``).

Exit code 0 on success; any violated assertion exits non-zero with a
diagnostic. Stdlib + repro only.

Usage::

    PYTHONPATH=src python scripts/fabric_smoke.py [--workdir DIR]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.fabric.broker import BrokerThread  # noqa: E402
from repro.scenario import ScenarioConfig, run_sweep  # noqa: E402

SMALL = dict(
    n_nodes=8,
    field_size=(400.0, 300.0),
    duration=10.0,
    n_connections=2,
    rate=1.0,
    max_speed=5.0,
    traffic_start_window=(0.0, 2.0),
)


def journal_events(path: Path) -> list:
    events = []
    try:
        raw = path.read_bytes()
    except OSError:
        return events
    for line in raw.splitlines():
        try:
            entry = json.loads(line)
        except (ValueError, UnicodeDecodeError):
            continue
        if isinstance(entry, dict):
            events.append(entry)
    return events


def spawn_worker(address: str, wid: str, chaos_sleep: float) -> subprocess.Popen:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "fabric-worker",
         "--broker", address, "--id", wid,
         "--chaos-sleep", str(chaos_sleep)],
        env=env,
    )


def fail(msg: str) -> None:
    print(f"FABRIC SMOKE FAILED: {msg}", file=sys.stderr)
    sys.exit(1)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workdir", default=None,
                        help="scratch directory (default: a fresh tempdir)")
    args = parser.parse_args(argv)
    workdir = Path(args.workdir or tempfile.mkdtemp(prefix="fabric-smoke-"))
    workdir.mkdir(parents=True, exist_ok=True)
    print(f"[workdir: {workdir}]")

    base = ScenarioConfig(protocol="aodv", seed=7, **SMALL)

    def sweep(cache_dir: Path, fabric=None):
        return run_sweep(
            base, "pause_time", [0.0, 30.0], ["aodv", "dsdv"],
            replications=1, processes=1, cache_dir=str(cache_dir),
            fabric=fabric,
        )

    fleet_dir = workdir / "fleet"
    bt = BrokerThread(
        cache_dir=str(fleet_dir),
        heartbeat_interval=0.1,
        lease_ttl=1.0,
        no_worker_grace=60.0,
    )
    broker = bt.start()
    workers = {}
    victim_proc = None
    try:
        print(f"[broker on {broker.address}]")
        workers = {
            wid: spawn_worker(broker.address, wid, chaos_sleep=1.5)
            for wid in ("smoke-w0", "smoke-w1")
        }
        victim = "smoke-w0"
        victim_proc = workers[victim]

        outcome = {}

        def client():
            outcome["result"] = sweep(workdir / "client", broker.address)

        t = threading.Thread(target=client, daemon=True)
        t.start()

        deadline = time.monotonic() + 60.0
        leased = False
        while time.monotonic() < deadline and not leased:
            leased = any(
                e.get("fabric") == "lease" and e.get("worker") == victim
                for e in journal_events(broker.journal_path)
            )
            time.sleep(0.05)
        if not leased:
            fail(f"victim {victim} never received a lease")
        victim_proc.kill()
        print(f"[SIGKILLed {victim} mid-lease]")

        t.join(timeout=300.0)
        if t.is_alive():
            fail("sweep did not complete within 300 s of the kill")
        result = outcome["result"]
    finally:
        for proc in workers.values():
            if proc.poll() is None:
                proc.terminate()
        for proc in workers.values():
            try:
                proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                proc.kill()
        bt.stop()

    if not result.ok:
        fail(f"sweep lost points: {result.failures}")
    fab = result.fabric or {}
    print(
        f"[fleet: executed={fab.get('points_executed')} "
        f"peer-cache={fab.get('results_from_peer_cache')} "
        f"reassigned={fab.get('leases_reassigned')} "
        f"fallback={fab.get('fallback_points')}]"
    )
    if fab.get("leases_reassigned", 0) < 1:
        fail("no lease was reassigned — the kill did not bite")

    clean = sweep(workdir / "local")
    if result.raw != clean.raw:
        fail("fleet result is NOT bit-identical to the local-pool run")
    print("[bit-identical to the clean local run]")

    manifest_path = result.manifest_path
    if not manifest_path:
        fail("fabric run produced no manifest")
    gate = subprocess.run(
        [sys.executable,
         str(Path(__file__).resolve().parent / "check_bench_regression.py"),
         "--manifest", manifest_path],
    )
    if gate.returncode != 0:
        fail("manifest accounting gate failed")
    print("FABRIC SMOKE PASSED")
    return 0


if __name__ == "__main__":
    sys.exit(main())
