#!/usr/bin/env python
"""Quickstart: one simulation, four metrics.

Runs the paper's base scenario (scaled down to finish in seconds) with
AODV and prints the four quantitative metrics of the study.

    python examples/quickstart.py [protocol]
"""

import sys

from repro import ScenarioConfig, run_scenario

protocol = sys.argv[1] if len(sys.argv) > 1 else "aodv"

config = ScenarioConfig(
    protocol=protocol,
    n_nodes=25,                   # paper: 50
    field_size=(1250.0, 300.0),   # paper: 1500 x 300
    duration=100.0,               # paper: 900 s
    n_connections=5,              # paper: 10/20/30 CBR sources
    rate=4.0,                     # 4 packets/s per source
    packet_size=64,
    max_speed=20.0,               # random waypoint, up to 20 m/s
    pause_time=0.0,               # maximum mobility
    traffic_start_window=(0.0, 20.0),
    seed=7,
)

print(f"Simulating {config.n_nodes} nodes for {config.duration:.0f} s "
      f"with {protocol.upper()} ...")
summary = run_scenario(config)

print(f"""
Results ({protocol.upper()})
  packets sent             : {summary.data_sent}
  packets delivered        : {summary.data_received}
  packet delivery ratio    : {summary.pdr:.3f}
  average end-to-end delay : {summary.avg_delay * 1000:.2f} ms
  normalized routing load  : {summary.normalized_routing_load:.3f}
  normalized MAC load      : {summary.normalized_mac_load:.3f}
  routing control packets  : {summary.routing_overhead_packets}
  average path length      : {summary.avg_hops + 1:.2f} links
""")
