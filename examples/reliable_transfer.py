#!/usr/bin/env python
"""Reliable telemetry stream over a mobile network: the TCP interaction.

The paper's metric discussion notes that with a reliable transport,
every lost data packet comes back as a retransmission — so routing
losses cost *time*, not just delivery ratio. This example paces a
50-segment telemetry stream (one segment every few seconds) through a moving 20-node network with a
stop-and-wait transport and compares completion time and
retransmission count over AODV vs DSDV.

    python examples/reliable_transfer.py
"""

from repro import ScenarioConfig, build_scenario
from repro.analysis import render_series_table
from repro.traffic import ReliableSink, ReliableSource

PROTOCOLS = ["aodv", "dsdv"]
SEGMENTS = 50

base = ScenarioConfig(
    n_nodes=20,
    field_size=(1000.0, 300.0),
    max_speed=20.0,
    pause_time=0.0,
    duration=300.0,
    n_connections=3,        # background CBR load
    rate=2.0,
    traffic_start_window=(0.0, 10.0),
    seed=19,
)

rows = {"completed": [], "transfer time (s)": [], "retransmissions": [],
        "duplicates at sink": []}
for proto in PROTOCOLS:
    print(f"running {proto}: {SEGMENTS}-segment transfer + background CBR ...")
    scen = build_scenario(base.with_(protocol=proto))
    sink = ReliableSink(scen.network.nodes[19], flow_id=99)
    source = ReliableSource(
        scen.sim, scen.network.nodes[0], 19,
        n_segments=SEGMENTS, size=512, flow_id=99, timeout=1.0, gap=3.0,
    )
    scen.network.start_routing()
    for s in scen.sources:
        s.begin()
    scen.sim.schedule(5.0, source.begin)  # let routing warm up
    scen.sim.run(until=base.duration)

    rows["completed"].append("yes" if source.complete else
                             ("abandoned" if source.abandoned else "timed out"))
    t = source.transfer_time
    rows["transfer time (s)"].append(round(t, 1) if t is not None else "-")
    rows["retransmissions"].append(source.retransmissions)
    rows["duplicates at sink"].append(sink.duplicates)

print("\n" + render_series_table(
    f"Reliable {SEGMENTS}x512B transfer across a mobile MANET",
    "metric \\ protocol", PROTOCOLS, rows))

print("\nEvery routing loss resurfaces as transport retransmission — the"
      "\nmechanism behind the paper's remark that TCP turns packet loss"
      "\ninto congestion.")
