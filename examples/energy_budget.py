#!/usr/bin/env python
"""Domain scenario: sensor-relief deployment on an energy budget.

Battery-powered nodes care about joules, not just packets. This example
runs the five protocols on a group-mobility (RPGM) scenario — rescue
teams sweeping an area — and reports each protocol's radio energy bill
next to its delivery ratio, including millijoules per delivered packet,
using the WaveLAN power-draw model.

Also demonstrates the topology snapshot renderer.

    python examples/energy_budget.py
"""

from repro import ScenarioConfig, build_scenario
from repro.analysis import render_network, render_series_table
from repro.stats import account_energy

PROTOCOLS = ["dsdv", "dsr", "aodv", "paodv", "cbrp"]

base = ScenarioConfig(
    mobility="rpgm",            # 4 teams, tethered members
    rpgm_groups=4,
    rpgm_radius=120.0,
    n_nodes=24,
    field_size=(1200.0, 600.0),
    max_speed=10.0,             # team movement pace
    duration=120.0,
    n_connections=6,
    traffic_start_window=(0.0, 20.0),
    seed=13,
)

print("Relief teams: 24 nodes in 4 RPGM groups, 1.2x0.6 km, 120 s\n")

results = {}
energies = {}
for proto in PROTOCOLS:
    print(f"  running {proto} ...")
    scen = build_scenario(base.with_(protocol=proto))
    results[proto] = scen.run()
    energies[proto] = account_energy(scen.network, base.duration)
    if proto == PROTOCOLS[-1]:
        print("\nFinal topology (last protocol's run):")
        print(render_network(scen.network, width=64, height=12, show_links=False))

table = render_series_table(
    "Energy budget per protocol",
    "metric \\ protocol",
    PROTOCOLS,
    {
        "PDR": [round(results[p].pdr, 3) for p in PROTOCOLS],
        "total energy (J)": [round(energies[p].total_joules, 1) for p in PROTOCOLS],
        "tx energy (J)": [round(energies[p].tx_joules, 2) for p in PROTOCOLS],
        "mJ / delivered pkt": [
            round(
                energies[p].joules_per_delivered(results[p].data_received) * 1000, 1
            )
            for p in PROTOCOLS
        ],
    },
)
print("\n" + table)

cheapest = min(PROTOCOLS, key=lambda p: energies[p].tx_joules)
print(f"\nLowest transmit energy: {cheapest.upper()} — idle listening dominates "
      "the budget either way, which is why MANET energy work moved toward "
      "sleep scheduling.")
