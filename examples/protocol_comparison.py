#!/usr/bin/env python
"""Head-to-head: all five protocols of the paper on one scenario.

Reproduces the paper's comparison table in miniature: every contender
runs the identical scenario (same seed → same mobility and traffic) and
the four metrics are tabulated side by side.

    python examples/protocol_comparison.py
"""

from repro import ScenarioConfig, run_scenario
from repro.analysis import render_series_table

PROTOCOLS = ["dsdv", "dsr", "aodv", "paodv", "cbrp"]

base = ScenarioConfig(
    n_nodes=25,
    field_size=(1250.0, 300.0),
    duration=120.0,
    n_connections=8,
    traffic_start_window=(0.0, 20.0),
    max_speed=20.0,
    pause_time=0.0,
    seed=11,
)

print(f"Scenario: {base.n_nodes} nodes, {base.field_size[0]:.0f}x"
      f"{base.field_size[1]:.0f} m, {base.duration:.0f} s, "
      f"{base.n_connections} CBR flows, pause {base.pause_time:.0f} s\n")

results = {}
for proto in PROTOCOLS:
    print(f"  running {proto} ...")
    results[proto] = run_scenario(base.with_(protocol=proto))

metrics = {
    "PDR": lambda s: round(s.pdr, 3),
    "delay (ms)": lambda s: round(s.avg_delay * 1000, 2),
    "routing overhead (pkts)": lambda s: s.routing_overhead_packets,
    "normalized routing load": lambda s: round(s.normalized_routing_load, 3),
    "normalized MAC load": lambda s: round(s.normalized_mac_load, 2),
    "avg path length": lambda s: round(s.avg_hops + 1, 2),
}

table = render_series_table(
    "Protocol comparison (identical scenario)",
    "metric \\ protocol",
    PROTOCOLS,
    {name: [get(results[p]) for p in PROTOCOLS] for name, get in metrics.items()},
)
print("\n" + table)

best_pdr = max(PROTOCOLS, key=lambda p: results[p].pdr)
least_ovh = min(PROTOCOLS, key=lambda p: results[p].routing_overhead_packets)
print(f"\nBest delivery: {best_pdr.upper()}; least control traffic: {least_ovh.upper()}")
