#!/usr/bin/env python
"""The paper's headline experiment in miniature: delivery vs mobility.

Sweeps random-waypoint pause time (0 = always moving ... duration =
static) for DSDV, DSR and AODV and charts the packet delivery ratio.
The expected shape: the on-demand protocols stay high everywhere, while
DSDV sags at low pause times (high mobility) because stale routes
persist until the next periodic update.

    python examples/mobility_study.py
"""

from repro import ScenarioConfig, run_sweep
from repro.analysis import render_ascii_chart, render_series_table

PAUSES = [0.0, 30.0, 60.0, 120.0]
PROTOCOLS = ["dsdv", "dsr", "aodv"]

base = ScenarioConfig(
    n_nodes=25,
    field_size=(1250.0, 300.0),
    duration=120.0,
    n_connections=8,
    traffic_start_window=(0.0, 20.0),
    max_speed=20.0,
    seed=23,
)

print(f"Sweeping pause time over {PAUSES} for {PROTOCOLS} "
      f"({len(PAUSES) * len(PROTOCOLS)} simulations) ...")
result = run_sweep(base, "pause_time", PAUSES, PROTOCOLS, replications=1)

pdr = {p: result.series(p, "pdr") for p in PROTOCOLS}
print("\n" + render_series_table(
    "Packet delivery ratio vs pause time", "pause (s)", PAUSES, pdr))
print("\n" + render_ascii_chart(PAUSES, pdr, y_label="PDR"))

nrl = {p: result.series(p, "nrl") for p in PROTOCOLS}
print("\n" + render_series_table(
    "Normalized routing load vs pause time", "pause (s)", PAUSES, nrl))

# The qualitative claims of the paper, checked live:
moving, static = PAUSES[0], PAUSES[-1]
dsdv_gain = result.estimate("dsdv", static, "pdr").mean - result.estimate(
    "dsdv", moving, "pdr").mean
print(f"\nDSDV delivery improves by {dsdv_gain:+.3f} when nodes stop moving;"
      f" on-demand protocols barely change — the paper's core observation.")
