#!/usr/bin/env python
"""Domain scenario: an urban vehicle convoy on a Manhattan street grid.

The MANET literature the paper sits in is motivated by exactly this
kind of deployment: vehicles constrained to streets, command traffic
flowing to a lead vehicle. Streets concentrate nodes along lines, which
stresses routing differently from open-field random waypoint — routes
are longer and break in bursts at intersections.

Compares AODV (reactive) against OLSR (proactive link-state, this
repo's extension protocol) on the same grid.

    python examples/urban_convoy.py
"""

from repro import ScenarioConfig, run_scenario
from repro.analysis import render_series_table

PROTOCOLS = ["aodv", "olsr"]

base = ScenarioConfig(
    n_nodes=30,
    field_size=(1000.0, 1000.0),
    mobility="manhattan",          # vehicles follow a 5x5 street grid
    max_speed=15.0,                # ~54 km/h urban speed
    min_speed=5.0,
    duration=120.0,
    n_connections=6,               # squads reporting to leads
    rate=4.0,
    packet_size=64,
    traffic_start_window=(0.0, 20.0),
    seed=31,
)

print("Urban convoy: 30 vehicles on a 5x5 Manhattan grid, 1 km², 120 s\n")
rows = {}
for proto in PROTOCOLS:
    print(f"  running {proto} ...")
    s = run_scenario(base.with_(protocol=proto))
    rows[proto] = s

table = render_series_table(
    "Urban convoy results",
    "metric \\ protocol",
    PROTOCOLS,
    {
        "PDR": [round(rows[p].pdr, 3) for p in PROTOCOLS],
        "delay (ms)": [round(rows[p].avg_delay * 1000, 2) for p in PROTOCOLS],
        "routing overhead": [rows[p].routing_overhead_packets for p in PROTOCOLS],
        "normalized MAC load": [round(rows[p].normalized_mac_load, 2) for p in PROTOCOLS],
    },
)
print("\n" + table)

a, o = rows["aodv"], rows["olsr"]
print(
    f"\nOLSR answers from its table ({o.avg_delay*1000:.1f} ms avg delay vs "
    f"{a.avg_delay*1000:.1f} ms for AODV) but pays {o.routing_overhead_packets}"
    f" control packets to AODV's {a.routing_overhead_packets} — the"
    " proactive/reactive trade at city scale."
)
