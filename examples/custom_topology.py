#!/usr/bin/env python
"""Power-user tour: hand-built topology, layer access, failure injection.

Skips the scenario harness entirely and uses the layer APIs directly:
a fixed 6-node topology with a redundant path, AODV routing, live
inspection of routing tables, then a simulated node death mid-flow to
watch the RERR → re-discovery → alternate-path sequence.

    python examples/custom_topology.py
"""

from repro.core import Simulator
from repro.mac import DcfMac
from repro.mobility import StaticPosition
from repro.net import build_network
from repro.phy import RadioParams, UnitDisk
from repro.routing import Aodv

#   0 --- 1 --- 2 --- 5      upper path (will be cut)
#    \                /
#     3 ---------- 4          lower path (backup, one hop longer legs)
POSITIONS = [
    (0.0, 100.0),      # 0: source
    (200.0, 100.0),    # 1
    (400.0, 100.0),    # 2
    (180.0, -50.0),    # 3   (0-3: 234 m, 3-4: 240 m — inside the 250 m disk)
    (420.0, -60.0),    # 4   (4-5: 241 m)
    (600.0, 100.0),    # 5: destination
]

sim = Simulator(seed=3)
net = build_network(
    sim,
    [StaticPosition(x, y) for x, y in POSITIONS],
    routing_factory=lambda s, nid, mac, rng: Aodv(s, nid, mac, rng),
    mac_factory=lambda s, radio, rng: DcfMac(s, radio, rng),
    propagation=UnitDisk(250.0),
    radio_params=RadioParams(),
)
net.start_routing()

received = []
net.nodes[5].register_receiver(lambda pkt, prev: received.append((sim.now, prev)))


def send_burst(n):
    for _ in range(n):
        net.nodes[0].send(5, 64)


print("Phase 1: discovery + 5 packets over the shortest path")
send_burst(5)
sim.run(until=2.0)
route = net.nodes[0].routing.table.get(5)
print(f"  delivered: {len(received)}; source route entry: next_hop="
      f"{route.next_hop}, hops={route.hops}")

# Both paths are 3 hops; whichever RREP won the race is now active.
active_first_hop = route.next_hop
backup_first_hop = 3 if active_first_hop == 1 else 1
backup_tail = 4 if backup_first_hop == 3 else 2

print(f"\nPhase 2: kill node {active_first_hop} (the active path) mid-session")
# Simulate a dead node by making its radio deaf and mute.
dead = net.nodes[active_first_hop]
dead.mac.send = lambda *a, **k: None
dead.radio.begin_arrival = lambda *a, **k: None

send_burst(5)
sim.run(until=20.0)
route = net.nodes[0].routing.table.get(5)
print(f"  delivered total: {len(received)}")
print(f"  new route: next_hop={route.next_hop}, hops={route.hops} "
      f"(expected detour via {backup_first_hop})")

last_prev = received[-1][1]
print(f"  last packet arrived at node 5 from node {last_prev}")
assert route.next_hop == backup_first_hop, "route should switch paths"
assert last_prev == backup_tail, "backup path should feed node 5"
assert len(received) == 10, "all 10 packets should eventually arrive"
print("\nThe RERR/re-discovery sequence routed around the failure.")
